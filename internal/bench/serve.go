// Service benchmarks: the thundering-herd behavior of the hpfd plan
// service. Each round aims a herd of concurrent clients at one cold key
// and measures client-observed latency, once with request coalescing
// (the shipping configuration: concurrent misses ride one compilation)
// and once with the pre-singleflight baseline where every miss compiles
// independently. The warm phase re-fires the same herd at the now-cached
// key as the floor the cold numbers should be judged against.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plancache"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// ServeBenchResult is one mode's herd measurement.
type ServeBenchResult struct {
	Mode      string // "coalesced" or "no-coalesce"
	Herd      int    // concurrent clients per round
	Rounds    int    // distinct cold keys
	Builds    int64  // plan compilations actually run (cache misses)
	Coalesced int64  // herd waiters that rode an in-flight compilation
	OK        int64
	Failed    int64
	ColdP50Ns int64 // client latency over the cold-key herds
	ColdP99Ns int64
	WarmP50Ns int64 // client latency once the key is cached
	WarmP99Ns int64
}

// serveBenchKey returns the round's plan key: heavyweight enough
// (64 ranks × cyclic(4096) over a 2^23 array) that one compilation
// outlasts a scheduler quantum — so the herd genuinely overlaps the
// build even on a single-CPU host — with the stride varied per round so
// every round's key is cold in both the service cache and the
// process-wide table cache.
func serveBenchKey(round int) serve.PlanRequest {
	return serve.PlanRequest{
		P: 64,
		K: 4096,
		L: 1,
		U: 1<<23 - 1,
		S: 3 + 2*int64(round),
		N: 1 << 23,
	}
}

// fireHerd launches herd concurrent POSTs of body at the service,
// recording per-request client latency; all requests are released
// together so a cold key sees a genuine thundering herd.
func fireHerd(client *http.Client, url string, body []byte, herd int,
	lat *telemetry.Histogram, ok, failed *atomic.Int64) {
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat.Observe(time.Since(t0).Nanoseconds())
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				failed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
}

// ServeBench measures the cold-key herd in both modes: herd concurrent
// clients, rounds distinct cold keys per mode. MaxInflight is raised to
// herd so the no-coalesce baseline pays the full cost of its duplicate
// compilations instead of shedding them with 429s.
func ServeBench(herd, rounds int) ([]ServeBenchResult, error) {
	if herd < 2 {
		herd = 64
	}
	if rounds < 1 {
		rounds = 3
	}
	modes := []struct {
		name       string
		noCoalesce bool
	}{
		{"coalesced", false},
		{"no-coalesce", true},
	}
	var out []ServeBenchResult
	for _, mode := range modes {
		// Both modes start from identical global state: the shared AM-table
		// cache warm from a previous mode would flatter whichever runs second.
		plancache.ResetTables()
		srv, err := serve.New(serve.Config{MaxInflight: herd, NoCoalesce: mode.noCoalesce})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String() + "/v1/plan"
		client := &http.Client{
			Timeout:   2 * time.Minute,
			Transport: &http.Transport{MaxIdleConnsPerHost: herd},
		}

		var cold, warm telemetry.Histogram
		var ok, failed atomic.Int64
		for round := 0; round < rounds; round++ {
			body, err := json.Marshal(serveBenchKey(round))
			if err != nil {
				hs.Close()
				srv.Close()
				return nil, err
			}
			fireHerd(client, url, body, herd, &cold, &ok, &failed)
			fireHerd(client, url, body, herd, &warm, &ok, &failed)
		}
		st := srv.Stats()
		hs.Close()
		srv.Close()
		res := ServeBenchResult{
			Mode:      mode.name,
			Herd:      herd,
			Rounds:    rounds,
			Builds:    st.Misses,
			Coalesced: st.Coalesced,
			OK:        ok.Load(),
			Failed:    failed.Load(),
			ColdP50Ns: cold.Quantile(0.50),
			ColdP99Ns: cold.Quantile(0.99),
			WarmP50Ns: warm.Quantile(0.50),
			WarmP99Ns: warm.Quantile(0.99),
		}
		if res.Failed > 0 {
			return nil, fmt.Errorf("bench: serve %s mode: %d of %d requests failed",
				mode.name, res.Failed, res.OK+res.Failed)
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatServeBench renders the herd comparison.
func FormatServeBench(results []ServeBenchResult) string {
	var b strings.Builder
	if len(results) > 0 {
		b.WriteString(fmt.Sprintf(
			"hpfd plan service: %d-client herd on a cold key, %d rounds per mode\n",
			results[0].Herd, results[0].Rounds))
	}
	b.WriteString(fmt.Sprintf("%-14s%9s%11s%14s%14s%14s\n",
		"mode", "builds", "coalesced", "cold p50", "cold p99", "warm p50"))
	for _, r := range results {
		b.WriteString(fmt.Sprintf("%-14s%9d%11d%14v%14v%14v\n",
			r.Mode, r.Builds, r.Coalesced,
			time.Duration(r.ColdP50Ns).Round(time.Microsecond),
			time.Duration(r.ColdP99Ns).Round(time.Microsecond),
			time.Duration(r.WarmP50Ns).Round(time.Microsecond)))
	}
	return b.String()
}
