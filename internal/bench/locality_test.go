package bench

import (
	"reflect"
	"strings"
	"testing"
)

func TestLocalityBench(t *testing.T) {
	const (
		p      = 4
		elems  = 256
		sweeps = 2
	)
	results, err := LocalityBench(p, elems, sweeps, []int64{16, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fams := ShapeFamilies()
	if len(results) != len(fams) {
		t.Fatalf("got %d rows, want %d", len(results), len(fams))
	}
	for i, r := range results {
		if r.Family != fams[i].Name || r.S != fams[i].S || r.Elems != elems || r.Sweeps != sweeps {
			t.Fatalf("row %d header = %+v", i, r)
		}
		for _, prof := range []struct {
			layout string
			p      LocalityProfile
		}{{"cyclic", r.Cyclic}, {"block", r.Block}} {
			// Every rank records sweeps*elems fill writes.
			if want := int64(p * sweeps * elems); prof.p.Accesses != want {
				t.Errorf("%s %s: accesses = %d, want %d", r.Family, prof.layout, prof.p.Accesses, want)
			}
			if prof.p.Lines <= 0 || prof.p.Lines >= prof.p.Accesses {
				t.Errorf("%s %s: distinct lines = %d out of %d accesses", r.Family, prof.layout, prof.p.Lines, prof.p.Accesses)
			}
			// The second sweep retouches every line, so reuses exist and a
			// huge LRU catches all of them while a 16-line one misses some.
			if len(prof.p.MissRates) != 2 {
				t.Fatalf("%s %s: miss rates = %+v", r.Family, prof.layout, prof.p.MissRates)
			}
			if big := prof.p.MissRates[1]; big.Misses != prof.p.Lines {
				t.Errorf("%s %s: miss@2^20 = %d, want cold-only %d", r.Family, prof.layout, big.Misses, prof.p.Lines)
			}
			if prof.p.MissRates[0].Misses < prof.p.MissRates[1].Misses {
				t.Errorf("%s %s: smaller cache misses less: %+v", r.Family, prof.layout, prof.p.MissRates)
			}
			if prof.p.MaxDist <= 0 || prof.p.MeanDist <= 0 {
				t.Errorf("%s %s: no finite reuse distances: %+v", r.Family, prof.layout, prof.p)
			}
		}
	}
	// The block family's cyclic layout IS the block layout: identical rows.
	for _, r := range results {
		if r.Family == "block" && !reflect.DeepEqual(r.Cyclic, r.Block) {
			t.Errorf("block family: cyclic and block profiles differ: %+v vs %+v", r.Cyclic, r.Block)
		}
	}
	// Deterministic: the profile is a pure function of the layouts.
	again, err := LocalityBench(p, elems, sweeps, []int64{16, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, again) {
		t.Error("LocalityBench is not deterministic")
	}
}

func TestFormatLocality(t *testing.T) {
	results, err := LocalityBench(2, 64, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLocality(results)
	for _, want := range []string{"Locality matrix", "cyclic1", "offsetdispatch", "miss@512"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted matrix missing %q:\n%s", want, out)
		}
	}
}
