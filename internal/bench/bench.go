// Package bench regenerates the paper's evaluation: Table 1 and Figure 7
// (AM-table construction time, lattice algorithm vs. the sorting
// baseline) and Table 2 (node-code execution time for the four loop
// shapes of Figure 8).
//
// The original numbers were measured on a 32-node Intel iPSC/860 with the
// icc -O4 compiler; reported times were the maximum over all processors
// (Section 6.1). Here both algorithms run on the host CPU, and "maximum
// over all processors" becomes the maximum over the per-processor runs
// executed sequentially. Absolute microseconds differ from 1995 hardware;
// the comparisons the paper draws — lattice ≈ sorting for tiny k, lattice
// winning by a growing factor as k grows, shape (a) ≫ (b) ≥ (c) > (d) —
// are reproduced in shape (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
)

// Method names a table-construction algorithm under test.
type Method string

// The two contenders of Table 1/Figure 7.
const (
	MethodLattice Method = "Lattice"
	MethodSorting Method = "Sorting"
)

// construct runs the named method. Mirroring the original implementation
// (Section 6.1), Sorting switches to the linear-time radix sort at
// k ≥ 64.
func construct(m Method, pr core.Problem) (core.Sequence, error) {
	switch m {
	case MethodLattice:
		return core.Lattice(pr)
	case MethodSorting:
		if pr.K >= 64 {
			return core.SortingRadix(pr)
		}
		return core.Sorting(pr)
	default:
		return core.Sequence{}, fmt.Errorf("bench: unknown method %q", m)
	}
}

// timeMaxOverProcs measures the wall time of constructing the AM table on
// every processor and returns the maximum per-processor time, repeating
// reps times and keeping the minimum of the maxima (minimum filters
// scheduler noise; maximum matches the paper's reporting).
//
// A single construction takes well under a microsecond for small k —
// below the timer's useful resolution — so each per-processor measurement
// times a calibrated batch of identical constructions and divides.
func timeMaxOverProcs(m Method, p, k, l, s int64, reps int) (time.Duration, error) {
	// Calibrate the batch size on processor 0 so one measurement window is
	// at least ~50µs.
	const window = 50 * time.Microsecond
	batch := 1
	for {
		pr := core.Problem{P: p, K: k, L: l, S: s, M: 0}
		t0 := time.Now()
		for b := 0; b < batch; b++ {
			seq, err := construct(m, pr)
			if err != nil {
				return 0, err
			}
			sink += len(seq.Gaps)
		}
		if el := time.Since(t0); el >= window || batch >= 1<<20 {
			break
		}
		batch *= 2
	}

	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		var worst time.Duration
		for proc := int64(0); proc < p; proc++ {
			pr := core.Problem{P: p, K: k, L: l, S: s, M: proc}
			t0 := time.Now()
			for b := 0; b < batch; b++ {
				seq, err := construct(m, pr)
				if err != nil {
					return 0, err
				}
				sink += len(seq.Gaps)
			}
			el := time.Since(t0) / time.Duration(batch)
			if el > worst {
				worst = el
			}
		}
		if worst < best {
			best = worst
		}
	}
	return best, nil
}

// sink defeats dead-code elimination of the timed constructions.
var sink int

// StrideCase is one stride column of Table 1. The stride may depend on k
// and pk (the paper's s = k+1, pk−1, pk+1 columns).
type StrideCase struct {
	Label  string
	Stride func(k, pk int64) int64
}

// Table1Strides returns the paper's five stride columns.
func Table1Strides() []StrideCase {
	return []StrideCase{
		{"s=7", func(k, pk int64) int64 { return 7 }},
		{"s=99", func(k, pk int64) int64 { return 99 }},
		{"s=k+1", func(k, pk int64) int64 { return k + 1 }},
		{"s=pk-1", func(k, pk int64) int64 { return pk - 1 }},
		{"s=pk+1", func(k, pk int64) int64 { return pk + 1 }},
	}
}

// Table1Ks returns the paper's block sizes (4 through 512, powers of two;
// k = 1, 2 omitted as in the paper because the work is negligible).
func Table1Ks() []int64 { return []int64{4, 8, 16, 32, 64, 128, 256, 512} }

// Cell is one measurement pair of Table 1.
type Cell struct {
	Stride           string
	Lattice, Sorting time.Duration
}

// Row is one block-size row of Table 1.
type Row struct {
	K     int64
	Cells []Cell
}

// Table1 measures the full table for p processors (the paper uses 32) and
// lower bound 0.
func Table1(p int64, reps int) ([]Row, error) {
	var rows []Row
	for _, k := range Table1Ks() {
		row := Row{K: k}
		for _, sc := range Table1Strides() {
			s := sc.Stride(k, p*k)
			lat, err := timeMaxOverProcs(MethodLattice, p, k, 0, s, reps)
			if err != nil {
				return nil, err
			}
			srt, err := timeMaxOverProcs(MethodSorting, p, k, 0, s, reps)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, Cell{Stride: sc.Label, Lattice: lat, Sorting: srt})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout (times in
// microseconds).
func FormatTable1(rows []Row) string {
	var b strings.Builder
	b.WriteString("Table 1: AM-table construction time in microseconds (max over processors)\n")
	b.WriteString(fmt.Sprintf("%-8s", "Block"))
	for _, c := range rows[0].Cells {
		b.WriteString(fmt.Sprintf("%22s", c.Stride))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-8s", "size"))
	for range rows[0].Cells {
		b.WriteString(fmt.Sprintf("%11s%11s", "Lattice", "Sorting"))
	}
	b.WriteString("\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("k=%-6d", r.K))
		for _, c := range r.Cells {
			b.WriteString(fmt.Sprintf("%11.2f%11.2f", us(c.Lattice), us(c.Sorting)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Figure7 returns the s=7 series of Table 1 — the data plotted in the
// paper's Figure 7 (lattice vs sorting versus block size).
func Figure7(p int64, reps int) ([]Row, error) {
	var rows []Row
	for _, k := range Table1Ks() {
		lat, err := timeMaxOverProcs(MethodLattice, p, k, 0, 7, reps)
		if err != nil {
			return nil, err
		}
		srt, err := timeMaxOverProcs(MethodSorting, p, k, 0, 7, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{K: k, Cells: []Cell{{Stride: "s=7", Lattice: lat, Sorting: srt}}})
	}
	return rows, nil
}

// FormatFigure7 renders the series as two aligned columns plus the ratio,
// the textual equivalent of the paper's plot.
func FormatFigure7(rows []Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: construction time vs block size, s=7 (microseconds)\n")
	b.WriteString(fmt.Sprintf("%8s%12s%12s%10s\n", "k", "Lattice", "Sorting", "ratio"))
	for _, r := range rows {
		c := r.Cells[0]
		ratio := float64(c.Sorting) / float64(c.Lattice)
		b.WriteString(fmt.Sprintf("%8d%12.2f%12.2f%9.2fx\n", r.K, us(c.Lattice), us(c.Sorting), ratio))
	}
	return b.String()
}

// Shape names a node-code variant of Figure 8.
type Shape string

// The four table-driven shapes plus the table-free walker.
const (
	ShapeA      Shape = "8(a) mod"
	ShapeB      Shape = "8(b) test"
	ShapeC      Shape = "8(c) for"
	ShapeD      Shape = "8(d) 2tab"
	ShapeWalker Shape = "walker"
)

// Shapes returns the Table 2 shapes in the paper's column order, with the
// table-free walker appended (our Section 6.2 extension column).
func Shapes() []Shape {
	return []Shape{ShapeA, ShapeB, ShapeC, ShapeD, ShapeWalker}
}

// Table2Case is one (k, s) row of Table 2.
type Table2Case struct {
	K, S int64
}

// Table2Cases returns the paper's nine (k, s) combinations.
func Table2Cases() []Table2Case {
	var cases []Table2Case
	for _, k := range []int64{4, 32, 256} {
		for _, s := range []int64{3, 15, 99} {
			cases = append(cases, Table2Case{K: k, S: s})
		}
	}
	return cases
}

// Table2Result is the measured execution time of every shape for one
// case.
type Table2Result struct {
	Case  Table2Case
	Times map[Shape]time.Duration
}

// Workload holds the prebuilt inputs for one processor's Table 2 sweep:
// local memory sized for exactly the requested number of owned elements,
// plus every table the Figure 8 shapes consume. Exported so the root
// benchmark suite can time individual shapes.
type Workload struct {
	mem         []float64
	start, last int64
	count       int64
	gaps        []int64
	offTab      core.OffsetTable
	pr          core.Problem
}

// BuildWorkload constructs the Table 2 workload for one processor.
func BuildWorkload(p, k, s, m, elems int64) (Workload, error) {
	pr := core.Problem{P: p, K: k, L: 0, S: s, M: m}
	seq, err := core.Lattice(pr)
	if err != nil {
		return Workload{}, err
	}
	if seq.Empty() {
		return Workload{}, fmt.Errorf("bench: processor %d owns nothing for k=%d s=%d", m, k, s)
	}
	offTab, err := core.OffsetTables(pr)
	if err != nil {
		return Workload{}, err
	}
	last := seq.Address(elems - 1)
	return Workload{
		mem:    make([]float64, last+1),
		start:  seq.StartLocal,
		last:   last,
		count:  elems,
		gaps:   seq.Gaps,
		offTab: offTab,
		pr:     pr,
	}, nil
}

// RunShape executes one full sweep with the given shape and returns the
// number of stores.
func (w *Workload) RunShape(sh Shape) (int64, error) {
	switch sh {
	case ShapeA:
		return codegen.ShapeA(w.mem, w.start, w.last, w.gaps, 1.0), nil
	case ShapeB:
		return codegen.ShapeB(w.mem, w.start, w.last, w.gaps, 1.0), nil
	case ShapeC:
		return codegen.ShapeC(w.mem, w.start, w.last, w.gaps, 1.0), nil
	case ShapeD:
		return codegen.ShapeD(w.mem, w.start, w.last, w.offTab, 1.0), nil
	case ShapeWalker:
		walker, ok, err := core.NewWalker(w.pr)
		if err != nil || !ok {
			return 0, fmt.Errorf("bench: walker unavailable: %v", err)
		}
		return codegen.ShapeWalker(w.mem, w.last, walker, 1.0), nil
	default:
		return 0, fmt.Errorf("bench: unknown shape %q", sh)
	}
}

// Table2 measures the node-code sweeps: each processor assigns to elems
// section elements (the paper uses 10,000); the reported time per shape
// is the maximum over processors, minimized over reps repetitions.
func Table2(p, elems int64, reps int) ([]Table2Result, error) {
	var results []Table2Result
	for _, tc := range Table2Cases() {
		res := Table2Result{Case: tc, Times: make(map[Shape]time.Duration)}
		// Prebuild all workloads (table construction is not part of the
		// measurement, as in Section 6.2).
		workloads := make([]Workload, p)
		for m := int64(0); m < p; m++ {
			w, err := BuildWorkload(p, tc.K, tc.S, m, elems)
			if err != nil {
				return nil, err
			}
			workloads[m] = w
		}
		for _, sh := range Shapes() {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				var worst time.Duration
				for m := range workloads {
					t0 := time.Now()
					n, err := workloads[m].RunShape(sh)
					el := time.Since(t0)
					if err != nil {
						return nil, err
					}
					if n != elems {
						return nil, fmt.Errorf("bench: shape %s wrote %d of %d elements", sh, n, elems)
					}
					if el > worst {
						worst = el
					}
				}
				if worst < best {
					best = worst
				}
			}
			res.Times[sh] = best
		}
		results = append(results, res)
	}
	return results, nil
}

// FormatTable2 renders the results in the paper's layout.
func FormatTable2(results []Table2Result) string {
	var b strings.Builder
	b.WriteString("Table 2: node-code execution time in microseconds (max over processors)\n")
	b.WriteString(fmt.Sprintf("%-14s", "Code shape"))
	for _, sh := range Shapes() {
		b.WriteString(fmt.Sprintf("%12s", sh))
	}
	b.WriteString("\n")
	for _, r := range results {
		b.WriteString(fmt.Sprintf("k=%-4d s=%-5d", r.Case.K, r.Case.S))
		for _, sh := range Shapes() {
			b.WriteString(fmt.Sprintf("%12.1f", us(r.Times[sh])))
		}
		b.WriteString("\n")
	}
	return b.String()
}
