// Observability benchmark: the per-phase latency attribution of a cold
// thundering herd, measured from hpfd's own request spans rather than
// from the client side. One run answers "when 64 clients hit one cold
// key, where does each request's time go" — admission, the winning
// build (tables / select / encode), the coalesced wait, and the
// unattributed remainder — exactly the table EXPERIMENTS.md reports.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/plancache"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/traceanalysis"
)

// ObsServeResult is the span-derived attribution of a cold-herd run.
type ObsServeResult struct {
	Herd   int
	Rounds int
	// Counts from the trace: every request span, the winning builds (one
	// per round), and the coalesced waiters that linked to them.
	Requests int
	Builds   int
	Waiters  int
	Phases   []traceanalysis.ServePhase
}

// Phase returns the named phase row (zero row when absent), mirroring
// ServeAnalysis.Phase for callers holding only the bench result.
func (r *ObsServeResult) Phase(name string) traceanalysis.ServePhase {
	for _, p := range r.Phases {
		if p.Name == name {
			return p
		}
	}
	return traceanalysis.ServePhase{Name: name}
}

// ObsServeBench fires rounds cold-key herds at an in-process hpfd with
// the span tracer on, then attributes the recorded spans. It owns the
// process-wide tracer for the duration of the run: any tracer the
// caller had active is stopped first and not restored.
func ObsServeBench(herd, rounds int) (*ObsServeResult, error) {
	if herd < 2 {
		herd = 64
	}
	if rounds < 1 {
		rounds = 3
	}
	plancache.ResetTables()
	telemetry.StopTracing()
	// Ring sized for the run: ~7 spans per building request and 3 per
	// waiter, with generous slack so Dropped stays zero.
	telemetry.StartTracing(0, 64*herd*rounds)
	defer telemetry.StopTracing()

	srv, err := serve.New(serve.Config{MaxInflight: herd})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	defer hs.Close()
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String() + "/v1/plan"
	client := &http.Client{
		Timeout:   2 * time.Minute,
		Transport: &http.Transport{MaxIdleConnsPerHost: herd},
	}

	var lat telemetry.Histogram
	var ok, failed atomic.Int64
	for round := 0; round < rounds; round++ {
		body, err := json.Marshal(serveBenchKey(round))
		if err != nil {
			return nil, err
		}
		fireHerd(client, url, body, herd, &lat, &ok, &failed)
	}
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("bench: obsserve: %d of %d requests failed", n, ok.Load()+n)
	}

	tracer := telemetry.StopTracing()
	if tracer == nil {
		return nil, fmt.Errorf("bench: obsserve: tracer vanished mid-run")
	}
	doc := tracer.TraceDoc()
	a, err := traceanalysis.AnalyzeServe(&doc)
	if err != nil {
		return nil, err
	}
	if a.Dropped > 0 {
		return nil, fmt.Errorf("bench: obsserve: ring overwrote %d events; raise the capacity", a.Dropped)
	}
	return &ObsServeResult{
		Herd: herd, Rounds: rounds,
		Requests: a.Requests, Builds: a.Builds, Waiters: a.Waiters,
		Phases: a.Phases,
	}, nil
}

// FormatObsServe renders the per-phase attribution table.
func FormatObsServe(r *ObsServeResult) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "hpfd request attribution: %d-client herd, %d cold keys (%d requests, %d builds, %d waiters)\n",
		r.Herd, r.Rounds, r.Requests, r.Builds, r.Waiters)
	fmt.Fprintf(&b, "%-14s%7s%14s%14s%14s\n", "phase", "count", "p50", "p99", "max")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-14s%7d%14v%14v%14v\n", p.Name, p.Count,
			time.Duration(p.P50Ns).Round(time.Microsecond),
			time.Duration(p.P99Ns).Round(time.Microsecond),
			time.Duration(p.MaxNs).Round(time.Microsecond))
	}
	return b.String()
}
