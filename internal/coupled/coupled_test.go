package coupled

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
)

func TestNewRefValidation(t *testing.T) {
	g2 := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	if _, err := NewRef(g2, 0, 5); err == nil {
		t.Error("c=0 should be rejected")
	}
	g1 := dist.MustNewGrid(dist.MustNew(2, 2))
	if _, err := NewRef(g1, 1, 0); err == nil {
		t.Error("rank-1 grid should be rejected")
	}
	if _, err := NewRef(g2, 1, 0); err != nil {
		t.Errorf("valid ref rejected: %v", err)
	}
}

// bruteAccesses enumerates the loop directly.
func bruteAccesses(rf *Ref, coords []int64, sec section.Section, n1 int64) []Access {
	width := rf.Grid.Dim(1).LocalCount(coords[1], n1)
	var out []Access
	for t, n := int64(0), sec.Count(); t < n; t++ {
		i := sec.Element(t)
		j := rf.Second(i)
		m0, m1 := rf.Owner(i)
		if m0 == coords[0] && m1 == coords[1] {
			out = append(out, Access{
				T: t, I: i, J: j,
				Linear: rf.Grid.Dim(0).Local(i)*width + rf.Grid.Dim(1).Local(j),
			})
		}
	}
	return out
}

func TestDiagonalAgainstBrute(t *testing.T) {
	// A(i, i) on a 2x3 grid: only processors whose blocks intersect the
	// diagonal own iterations.
	g := dist.MustNewGrid(dist.MustNew(2, 3), dist.MustNew(3, 2))
	rf, err := NewRef(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sec := section.MustNew(0, 35, 1)
	var total int64
	for r := int64(0); r < g.Procs(); r++ {
		coords := g.Coords(r)
		got, err := rf.Addresses(coords, sec, 36, 36)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAccesses(rf, coords, sec, 36)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("proc %v:\n got  %v\n want %v", coords, got, want)
		}
		total += int64(len(got))
	}
	if total != 36 {
		t.Errorf("diagonal iterations total %d, want 36", total)
	}
}

func TestCoupledRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		g := dist.MustNewGrid(
			dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
			dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
		)
		c := r.Int63n(7) - 3
		if c == 0 {
			c = 2
		}
		d := r.Int63n(30)
		rf, err := NewRef(g, c, d)
		if err != nil {
			t.Fatal(err)
		}
		// Build a loop section whose images stay in bounds.
		s := r.Int63n(4) + 1
		lo := r.Int63n(10)
		cnt := r.Int63n(12) + 1
		hi := lo + (cnt-1)*s
		n0 := hi + 1 + r.Int63n(10)
		// Second subscript range.
		jLo, jHi := rf.Second(lo), rf.Second(hi)
		if jLo > jHi {
			jLo, jHi = jHi, jLo
		}
		if jLo < 0 {
			d -= jLo
			rf.D = d
			jHi -= jLo
			jLo = 0
		}
		n1 := jHi + 1 + r.Int63n(10)
		sec := section.Section{Lo: lo, Hi: hi, Stride: s}

		var total int64
		for rank := int64(0); rank < g.Procs(); rank++ {
			coords := g.Coords(rank)
			got, err := rf.Addresses(coords, sec, n0, n1)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := bruteAccesses(rf, coords, sec, n1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d c=%d d=%d sec=%v proc %v:\n got  %v\n want %v",
					trial, c, d, sec, coords, got, want)
			}
			n, err := rf.Count(coords, sec, n0, n1)
			if err != nil || n != int64(len(want)) {
				t.Fatalf("trial %d: Count=%d want %d err=%v", trial, n, len(want), err)
			}
			total += n
		}
		if total != sec.Count() {
			t.Fatalf("trial %d: iterations split %d, want %d", trial, total, sec.Count())
		}
	}
}

func TestAntiDiagonal(t *testing.T) {
	// A(i, 20 - i): c = -1.
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	rf, err := NewRef(g, -1, 20)
	if err != nil {
		t.Fatal(err)
	}
	sec := section.MustNew(0, 20, 1)
	var total int64
	for rank := int64(0); rank < g.Procs(); rank++ {
		coords := g.Coords(rank)
		got, err := rf.Addresses(coords, sec, 21, 21)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAccesses(rf, coords, sec, 21)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("proc %v mismatch", coords)
		}
		total += int64(len(got))
	}
	if total != 21 {
		t.Errorf("anti-diagonal total %d, want 21", total)
	}
}

func TestRangeValidation(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	rf, _ := NewRef(g, 1, 0)
	// i up to 40 but array is 30x30.
	if _, err := rf.Positions([]int64{0, 0}, section.MustNew(0, 40, 1), 30, 30); err == nil {
		t.Error("out-of-range first subscript should fail")
	}
	// j = 2i+5 escapes n1.
	rf2, _ := NewRef(g, 2, 5)
	if _, err := rf2.Positions([]int64{0, 0}, section.MustNew(0, 9, 1), 10, 20); err == nil {
		t.Error("out-of-range second subscript should fail")
	}
	// Wrong coords length.
	if _, err := rf.Positions([]int64{0}, section.MustNew(0, 9, 1), 30, 30); err == nil {
		t.Error("bad coords should fail")
	}
	// Empty section is fine.
	if progs, err := rf.Positions([]int64{0, 0}, section.MustNew(5, 4, 1), 30, 30); err != nil || progs != nil {
		t.Errorf("empty section: %v %v", progs, err)
	}
}
