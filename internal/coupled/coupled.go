// Package coupled handles COUPLED subscripts: array references whose
// dimensions are driven by the same loop index, such as the diagonal
// A(i, i) or the banded A(i, c·i + d). The paper lists "compiling
// programs that access diagonal or trapezoidal array sections" as open
// future work (Section 8) and defers coupled subscripts to the authors'
// ICS'95 follow-up (reference [12]); this package implements the natural
// extension of the same machinery.
//
// For a loop index i ranging over a regular section, element
// (i, c·i + d) of a grid-distributed 2-D array lives on grid processor
// (owner₀(i), owner₁(c·i + d)). Each ownership condition makes the set of
// loop positions a union of at most k arithmetic progressions (one
// congruence per block offset, exactly as in the 1-D case); a grid
// processor's positions are the pairwise progression intersections,
// computed in closed form by the extended Euclidean algorithm — no
// element scanning.
package coupled

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/section"
)

// Ref is a coupled 2-D array reference A(i, C·i + D) over a rank-2 grid.
type Ref struct {
	Grid *dist.Grid
	C, D int64 // second subscript as a function of the first
}

// NewRef validates the reference. C may be negative (anti-diagonals) but
// not zero (that would be an uncoupled reference A(i, const), which the
// 1-D machinery already covers).
func NewRef(grid *dist.Grid, c, d int64) (*Ref, error) {
	if grid.Rank() != 2 {
		return nil, fmt.Errorf("coupled: need a rank-2 grid, got %d", grid.Rank())
	}
	if c == 0 {
		return nil, fmt.Errorf("coupled: c = 0 is not a coupled subscript")
	}
	return &Ref{Grid: grid, C: c, D: d}, nil
}

// Second returns the second subscript for loop index i.
func (rf *Ref) Second(i int64) int64 { return rf.C*i + rf.D }

// Owner returns the grid coordinates owning the element touched at loop
// index i.
func (rf *Ref) Owner(i int64) (m0, m1 int64) {
	return rf.Grid.Dim(0).Owner(i), rf.Grid.Dim(1).Owner(rf.Second(i))
}

// checkRange validates that every element the loop touches stays inside
// an n0×n1 array: affine subscripts are monotonic, so endpoint checks
// suffice.
func (rf *Ref) checkRange(sec section.Section, n0, n1 int64) error {
	if sec.Empty() {
		return nil
	}
	for _, i := range []int64{sec.Lo, sec.Last()} {
		if i < 0 || i >= n0 {
			return fmt.Errorf("coupled: first subscript %d outside [0, %d)", i, n0)
		}
		if j := rf.Second(i); j < 0 || j >= n1 {
			return fmt.Errorf("coupled: second subscript %d outside [0, %d)", j, n1)
		}
	}
	return nil
}

// Positions returns the loop positions t (as progressions over
// [0, sec.Count())) whose element (i, C·i+D), i = sec(t), lives on the
// grid processor at coords. The result is sorted by first element.
func (rf *Ref) Positions(coords []int64, sec section.Section, n0, n1 int64) ([]section.Section, error) {
	if len(coords) != 2 {
		return nil, fmt.Errorf("coupled: want 2 coordinates, got %d", len(coords))
	}
	if err := rf.checkRange(sec, n0, n1); err != nil {
		return nil, err
	}
	n := sec.Count()
	if n == 0 {
		return nil, nil
	}
	// Condition on dim 0: i = sec.Lo + t·sec.Stride owned by coords[0].
	p0 := comm.OwnedPositions(rf.Grid.Dim(0), sec, coords[0], n)
	// Condition on dim 1: j = C·sec.Lo + D + t·(C·sec.Stride) owned by
	// coords[1] — another regular section in t.
	sec1 := section.Section{
		Lo:     rf.Second(sec.Lo),
		Hi:     rf.Second(sec.Lo) + (n-1)*rf.C*sec.Stride,
		Stride: rf.C * sec.Stride,
	}
	p1 := comm.OwnedPositions(rf.Grid.Dim(1), sec1, coords[1], n)

	var out []section.Section
	for _, a := range p0 {
		for _, b := range p1 {
			if common, ok := section.Intersect(a, b); ok {
				out = append(out, common)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out, nil
}

// Access is one owned loop iteration: the position t, the global
// subscripts, and the linear address in the processor's dense row-major
// local matrix (as laid out by hpf.Array2D).
type Access struct {
	T      int64 // loop position
	I, J   int64 // global subscripts
	Linear int64 // local linear address
}

// Addresses materializes the owned iterations for the processor at
// coords, in loop order, with local addresses for an n0×n1 array.
func (rf *Ref) Addresses(coords []int64, sec section.Section, n0, n1 int64) ([]Access, error) {
	progs, err := rf.Positions(coords, sec, n0, n1)
	if err != nil {
		return nil, err
	}
	width := rf.Grid.Dim(1).LocalCount(coords[1], n1)
	var ts []int64
	for _, pg := range progs {
		ts = append(ts, pg.Slice()...)
	}
	if len(ts) == 0 {
		return nil, nil
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]Access, 0, len(ts))
	for _, t := range ts {
		i := sec.Element(t)
		j := rf.Second(i)
		out = append(out, Access{
			T: t, I: i, J: j,
			Linear: rf.Grid.Dim(0).Local(i)*width + rf.Grid.Dim(1).Local(j),
		})
	}
	return out, nil
}

// Count returns how many loop iterations the processor at coords owns.
func (rf *Ref) Count(coords []int64, sec section.Section, n0, n1 int64) (int64, error) {
	progs, err := rf.Positions(coords, sec, n0, n1)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, pg := range progs {
		n += pg.Count()
	}
	return n, nil
}
