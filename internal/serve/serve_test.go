package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postPlan(t *testing.T, url string, req PlanRequest, header http.Header) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		hr.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodePlan(t *testing.T, resp *http.Response) PlanDoc {
	t.Helper()
	defer resp.Body.Close()
	var doc PlanDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid plan document: %v", err)
	}
	return doc
}

// TestPlanPaperExample compiles the paper's running example
// (p=4, k=8, section 4:…:9) and checks processor 1 against the §5
// golden values: start index 13, AM table [3 12 15 12 3 12 3 12].
func TestPlanPaperExample(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("Cache-Control = %q, want an immutable policy", cc)
	}
	if et := resp.Header.Get("ETag"); et == "" {
		t.Error("response has no ETag")
	}
	doc := decodePlan(t, resp)
	if doc.Schema != PlanDocSchema {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Ranks) != 4 {
		t.Fatalf("got %d ranks, want 4", len(doc.Ranks))
	}
	r1 := doc.Ranks[1]
	if r1.Start != 13 {
		t.Errorf("rank 1 start = %d, want 13", r1.Start)
	}
	wantGaps := []int64{3, 12, 15, 12, 3, 12, 3, 12}
	if len(r1.Gaps) != len(wantGaps) {
		t.Fatalf("rank 1 gaps = %v, want %v", r1.Gaps, wantGaps)
	}
	for i, g := range wantGaps {
		if r1.Gaps[i] != g {
			t.Fatalf("rank 1 gaps = %v, want %v", r1.Gaps, wantGaps)
		}
	}
	if r1.Kernel == "" || r1.Kernel == "none" {
		t.Errorf("rank 1 kernel = %q", r1.Kernel)
	}
	var total int64
	for _, r := range doc.Ranks {
		total += r.Count
	}
	if total != doc.TotalCount || total != 36 { // |{4, 13, …, 319}| = 36
		t.Errorf("total count = %d (doc says %d), want 36", total, doc.TotalCount)
	}
}

// TestGetFormMatchesPost: the URL-addressable GET form compiles the
// same key to the same bytes and the same ETag as the POST form.
func TestGetFormMatchesPost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
	postBody, _ := io.ReadAll(post.Body)
	post.Body.Close()
	get, err := http.Get(ts.URL + "/v1/plan?p=4&k=8&l=4&u=319&s=9&n=320")
	if err != nil {
		t.Fatal(err)
	}
	getBody, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if !bytes.Equal(postBody, getBody) {
		t.Error("GET and POST bodies differ for the same key")
	}
	if pe, ge := post.Header.Get("ETag"), get.Header.Get("ETag"); pe != ge || pe == "" {
		t.Errorf("ETags differ: POST %q, GET %q", pe, ge)
	}
}

// TestETag304: a conditional request with the plan's ETag is answered
// 304 with no body, and the ETag is deterministic across server
// instances (a restarted hpfd honors ETags minted by its predecessor).
func TestETag304(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := PlanRequest{P: 8, K: 16, L: 0, U: 999, S: 7, N: 1000}
	first := postPlan(t, ts.URL, req, nil)
	etag := first.Header.Get("ETag")
	first.Body.Close()
	if etag == "" {
		t.Fatal("no ETag on first response")
	}

	second := postPlan(t, ts.URL, req, http.Header{"If-None-Match": {etag}})
	defer second.Body.Close()
	if second.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional request = %d, want 304", second.StatusCode)
	}
	if body, _ := io.ReadAll(second.Body); len(body) != 0 {
		t.Errorf("304 carried a %d-byte body", len(body))
	}
	if got := second.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	// A fresh server (cold cache) must mint the identical ETag.
	_, ts2 := newTestServer(t, Config{})
	other := postPlan(t, ts2.URL, req, http.Header{"If-None-Match": {etag}})
	other.Body.Close()
	if other.StatusCode != http.StatusNotModified {
		t.Errorf("restarted server answered %d to the old ETag, want 304", other.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]PlanRequest{
		"zero procs":     {P: 0, K: 8, L: 0, U: 99, S: 3},
		"zero stride":    {P: 4, K: 8, L: 0, U: 99, S: 0},
		"empty section":  {P: 4, K: 8, L: 50, U: 10, S: 3},
		"out of bounds":  {P: 4, K: 8, L: 0, U: 99, S: 3, N: 50},
		"oversized p":    {P: 1 << 20, K: 8, L: 0, U: 99, S: 3},
		"negative lower": {P: 4, K: 8, L: -1, U: 99, S: 3},
	} {
		resp := postPlan(t, ts.URL, req, nil)
		var doc map[string]string
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if doc["error"] == "" {
			t.Errorf("%s: no error document", name)
		}
	}
	// Malformed JSON and a bad GET query are refused too.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/plan?p=4&k=8&u=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query params: status = %d, want 400", resp.StatusCode)
	}
}

// TestTenantQuota: a tenant that exhausts its burst gets 429 with a
// Retry-After, while other tenants are unaffected; after the bucket
// refills the tenant is served again.
func TestTenantQuota(t *testing.T) {
	srv, ts := newTestServer(t, Config{TenantRate: 50, TenantBurst: 2})
	clock := time.Unix(1000, 0)
	srv.quotas.now = func() time.Time { return clock }

	req := PlanRequest{P: 4, K: 8, L: 0, U: 99, S: 3}
	tenantA := http.Header{"X-Tenant": {"team-a"}}
	for i := 0; i < 2; i++ {
		resp := postPlan(t, ts.URL, req, tenantA)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst = %d, want 200", i, resp.StatusCode)
		}
	}
	limited := postPlan(t, ts.URL, req, tenantA)
	limited.Body.Close()
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request = %d, want 429", limited.StatusCode)
	}
	if ra := limited.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 Retry-After = %q, want a positive whole-second delay", ra)
	}
	// Another tenant still has its full burst.
	other := postPlan(t, ts.URL, req, http.Header{"X-Tenant": {"team-b"}})
	other.Body.Close()
	if other.StatusCode != http.StatusOK {
		t.Errorf("other tenant = %d, want 200", other.StatusCode)
	}
	// One refill interval later the limited tenant is served again.
	clock = clock.Add(time.Second)
	retry := postPlan(t, ts.URL, req, tenantA)
	retry.Body.Close()
	if retry.StatusCode != http.StatusOK {
		t.Errorf("post-refill request = %d, want 200", retry.StatusCode)
	}
}

// TestBatchPartialFailure: invalid keys in a batch fail item-by-item
// without spoiling the valid ones.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(batchRequest{Requests: []PlanRequest{
		{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320},
		{P: 0, K: 8, L: 0, U: 99, S: 3}, // invalid: p = 0
		{P: 2, K: 4, L: 0, U: 63, S: 5},
	}})
	resp, err := http.Post(ts.URL+"/v1/plan/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	var bresp batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Schema != BatchSchema {
		t.Errorf("schema = %q", bresp.Schema)
	}
	if len(bresp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(bresp.Results))
	}
	for _, i := range []int{0, 2} {
		res := bresp.Results[i]
		if res.Error != "" || len(res.Plan) == 0 || res.ETag == "" {
			t.Errorf("result %d should have succeeded: %+v", i, res)
			continue
		}
		var doc PlanDoc
		if err := json.Unmarshal(res.Plan, &doc); err != nil || doc.Schema != PlanDocSchema {
			t.Errorf("result %d plan invalid: %v", i, err)
		}
	}
	if bad := bresp.Results[1]; bad.Error == "" || len(bad.Plan) != 0 {
		t.Errorf("result 1 should have failed: %+v", bad)
	}

	// Oversized and empty batches are refused outright.
	for name, reqs := range map[string][]PlanRequest{
		"empty":     {},
		"oversized": make([]PlanRequest, 5),
	} {
		body, _ := json.Marshal(batchRequest{Requests: reqs})
		resp, err := http.Post(ts.URL+"/v1/plan/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusBadRequest
		if name == "oversized" && resp.StatusCode == http.StatusOK {
			continue // default MaxBatch is 256; only fails with a smaller cap below
		}
		if name == "empty" && resp.StatusCode != want {
			t.Errorf("%s batch: status = %d, want %d", name, resp.StatusCode, want)
		}
	}
	_, tsSmall := newTestServer(t, Config{MaxBatch: 2})
	body, _ = json.Marshal(batchRequest{Requests: make([]PlanRequest, 3)})
	resp, err = http.Post(tsSmall.URL+"/v1/plan/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("3-key batch with MaxBatch 2: status = %d, want 400", resp.StatusCode)
	}
}

// TestHerdCoalesces is the tentpole acceptance test at the HTTP layer:
// 64 concurrent requests for one cold key must trigger exactly one
// compilation, with the other 63 coalescing onto it — all 64 answered
// 200 with identical bodies.
func TestHerdCoalesces(t *testing.T) {
	const herd = 64
	var srv *Server
	cfg := Config{compileHook: func(PlanRequest) {
		// Hold the single build until all waiters have coalesced, making
		// the miss/coalesced accounting below deterministic.
		deadline := time.Now().Add(20 * time.Second)
		for srv.Stats().Coalesced < herd-1 && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := PlanRequest{P: 8, K: 32, L: 2, U: 4095, S: 11, N: 4096}
	bodies := make([][]byte, herd)
	codes := make([]int, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned a different body", i)
		}
	}
	st := srv.Stats()
	if st.Misses != 1 {
		t.Errorf("herd compiled %d times, want exactly 1 (stats %+v)", st.Misses, st)
	}
	if st.Coalesced != herd-1 {
		t.Errorf("coalesced waiters = %d, want %d", st.Coalesced, herd-1)
	}
}

// TestAdmissionControl: with one compile slot and a blocked compile, a
// second cold key is refused 429 + Retry-After; once the slot frees,
// the refused key compiles fine (the overload error was not cached).
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var once sync.Once
	cfg := Config{MaxInflight: 1, compileHook: func(PlanRequest) {
		once.Do(func() { entered <- struct{}{} })
		<-release
	}}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	slow := PlanRequest{P: 4, K: 8, L: 0, U: 999, S: 3, N: 1000}
	fast := PlanRequest{P: 4, K: 8, L: 0, U: 999, S: 5, N: 1000}
	done := make(chan int, 1)
	go func() {
		resp := postPlan(t, ts.URL, slow, nil)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered // the only compile slot is now held

	refused := postPlan(t, ts.URL, fast, nil)
	refused.Body.Close()
	if refused.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second cold key while saturated = %d, want 429", refused.StatusCode)
	}
	if refused.Header.Get("Retry-After") == "" {
		t.Error("overload 429 has no Retry-After")
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished %d, want 200", code)
	}
	retry := postPlan(t, ts.URL, fast, nil)
	retry.Body.Close()
	if retry.StatusCode != http.StatusOK {
		t.Errorf("retry after the slot freed = %d, want 200 (overload must not be cached)", retry.StatusCode)
	}
}

// TestGracefulShutdownDrains: Shutdown must wait for an in-flight
// compile to finish and its response to be written, then stop accepting
// new connections.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	srv, err := New(Config{compileHook: func(PlanRequest) {
		once.Do(func() { started <- struct{}{} })
		<-release
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320})
		resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: b}
	}()
	<-started // the compile is now in flight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	// Shutdown must not return while the compile is still held.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight compile finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-inflight
	if res.code != http.StatusOK {
		t.Fatalf("drained request finished %d, want 200", res.code)
	}
	var doc PlanDoc
	if err := json.Unmarshal(res.body, &doc); err != nil || doc.Schema != PlanDocSchema {
		t.Errorf("drained response is not a plan document: %v", err)
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server accepted a connection after Shutdown returned")
	}
}

// TestOpsEndpoints: the service mounts the shared telemetry surface and
// publishes its own hpfd.* metrics plus the plan cache's gauges.
func TestOpsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{MetricsName: fmt.Sprintf("hpfd.test%d", time.Now().UnixNano())})
	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 0, U: 99, S: 3}, nil)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", mresp.StatusCode)
	}
	for _, want := range []string{"hpfd_requests", "hpfd_responses_ok", "hpfd_compile_ns", "plancache_hpfd_test"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(health), "ok") {
		t.Errorf("/healthz = %d: %s", hresp.StatusCode, health)
	}
	iresp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if !strings.Contains(string(index), "/v1/plan") {
		t.Errorf("index page does not list endpoints: %s", index)
	}
}

// TestWarmKeyIsCached: the second request for a key is a cache hit —
// no recompilation, identical bytes.
func TestWarmKeyIsCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := PlanRequest{P: 4, K: 8, L: 0, U: 499, S: 7, N: 500}
	for i := 0; i < 3; i++ {
		resp := postPlan(t, ts.URL, req, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d", i, resp.StatusCode)
		}
	}
	st := srv.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss and 2 hits", st)
	}
}
