package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Request-scoped observability: the middleware that gives every request
// a trace identity, a root span, an access-log line, and RED/SLO
// accounting.
//
// Identity rules follow W3C trace-context: an inbound traceparent
// header is adopted (same trace ID, inbound span as remote parent) so
// hpfd joins the caller's distributed trace; otherwise a fresh trace is
// minted. X-Request-ID is echoed when the caller supplied one and
// otherwise set to the trace ID, and the response always carries a
// traceparent naming hpfd's own root span — so a client can correlate
// its request with the server's exported trace even when tracing was
// enabled only server-side.

// reqObs is the per-request mutable observation record handlers add to
// (currently just the cache outcome) and the access log reads back.
type reqObs struct {
	outcome string
}

type obsKey struct{}

// setOutcome annotates the in-flight request with its cache outcome
// ("hit", "built", "coalesced") or terminal disposition ("quota",
// "error"). No-op outside a request.
func setOutcome(ctx context.Context, outcome string) {
	if o, ok := ctx.Value(obsKey{}).(*reqObs); ok {
		o.outcome = outcome
	}
}

// statusWriter captures the status code and body size the handler
// produced, for the access log and RED metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// observe wraps the mux with the request-scoped observability layer.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()

		// Trace identity: join the caller's trace or start one.
		var parent uint64
		sc, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		if ok {
			parent = sc.Span
		} else {
			sc.TraceHi, sc.TraceLo = telemetry.NewTraceID()
		}
		sc.Span = telemetry.NewSpanID()

		requestID := r.Header.Get("X-Request-ID")
		if requestID == "" {
			requestID = sc.TraceID()
		}
		h := w.Header()
		h.Set("X-Request-ID", requestID)
		h.Set("traceparent", telemetry.FormatTraceparent(sc))

		ctx := context.WithValue(r.Context(), obsKey{}, &reqObs{})
		ctx, span := telemetry.StartRootSpan(ctx, "hpfd.request", sc, parent)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))

		span.End()
		dur := time.Since(t0)
		route := routeLabel(r.URL.Path)
		tenant := r.Header.Get("X-Tenant")
		s.red.record(route, tenant, sw.status, dur)
		if s.slo != nil {
			s.slo.record(dur)
		}
		if s.logger != nil {
			o, _ := ctx.Value(obsKey{}).(*reqObs)
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("tenant", tenant),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Int64("dur_ns", dur.Nanoseconds()),
				slog.String("cache", o.outcome),
				slog.String("trace", sc.TraceID()),
				slog.String("span", sc.SpanID()),
				slog.String("request_id", requestID),
			)
		}
	})
}
