package serve

import (
	"context"
	"io"
	"log/slog"
	"testing"
)

// accessLogAttrs mirrors the observe middleware's LogAttrs call: same
// attr count and shapes, so the benchmark measures the real call site's
// cost when the handler's level filters the record out.
func accessLogAttrs(ctx context.Context, logger *slog.Logger) {
	logger.LogAttrs(ctx, slog.LevelInfo, "request",
		slog.String("route", "plan"),
		slog.String("method", "POST"),
		slog.String("path", "/v1/plan"),
		slog.String("tenant", "t"),
		slog.Int("status", 200),
		slog.Int64("bytes", 512),
		slog.Int64("dur_ns", 1234567),
		slog.String("cache", "hit"),
		slog.String("trace", "4bf92f3577b34da6a3ce929d0e0e4736"),
		slog.String("span", "00f067aa0ba902b7"),
		slog.String("request_id", "req-1"),
	)
}

// TestSlogDisabledZeroAlloc: when the access log's level is filtered
// out, the LogAttrs call must not allocate — serving with -log-format
// suppressed must cost nothing per request beyond the level check.
func TestSlogDisabledZeroAlloc(t *testing.T) {
	logger := slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() { accessLogAttrs(ctx, logger) }); n != 0 {
		t.Errorf("disabled access log allocates %v times per call, want 0", n)
	}
}

// BenchmarkSlogDisabled is the companion ReportAllocs benchmark: the
// per-request cost of the access-log call when logging is suppressed.
func BenchmarkSlogDisabled(b *testing.B) {
	logger := slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accessLogAttrs(ctx, logger)
	}
}

// BenchmarkSlogEnabled is the same call with the record actually
// serialized — the price of turning the access log on.
func BenchmarkSlogEnabled(b *testing.B) {
	logger := slog.New(slog.NewJSONHandler(io.Discard, nil))
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		accessLogAttrs(ctx, logger)
	}
}
