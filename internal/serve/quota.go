package serve

import (
	"math"
	"sync"
	"time"
)

// quotas is a per-tenant token-bucket registry. Each tenant (the
// X-Tenant request header; empty maps to "default") refills at rate
// tokens/second up to burst. Buckets are created on first use and the
// registry is bounded: once maxTenants distinct tenants exist, unknown
// tenants share the "overflow" bucket rather than growing the map
// without limit — a quota table must not itself be a memory-exhaustion
// vector.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

const (
	defaultTenant  = "default"
	overflowTenant = "overflow"
	maxTenants     = 4096
)

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotas returns a registry allowing rate requests/second with the
// given burst per tenant. rate <= 0 disables quota enforcement.
func newQuotas(rate, burst float64) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow consumes one token from tenant's bucket. When the bucket is
// empty it reports false and the duration after which one token will
// have refilled — the Retry-After the handler returns with the 429.
func (q *quotas) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil || q.rate <= 0 {
		return true, 0
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= maxTenants {
			tenant = overflowTenant
			b = q.buckets[tenant]
		}
		if b == nil {
			b = &bucket{tokens: q.burst, last: q.now()}
			q.buckets[tenant] = b
		}
	}
	now := q.now()
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(math.Ceil(deficit / q.rate * float64(time.Second)))
}
