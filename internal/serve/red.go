package serve

import (
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// RED metrics and SLO burn tracking.
//
// The per-request counters in Server answer "how is the service doing
// overall"; operating a multi-tenant service additionally needs the RED
// decomposition — Rate, Errors, Duration — keyed by route and by
// tenant, so one tenant's herd or one route's regression is visible in
// isolation. The registry has no label support, so labels are folded
// into metric names (hpfd.route.plan.2xx, hpfd.tenant.acme.throttled),
// with tenant cardinality bounded the same way the quota table bounds
// its buckets: past the cap, new tenants share an overflow bucket.

// routeLabel maps a request path onto the bounded route vocabulary used
// in metric names and access logs.
func routeLabel(path string) string {
	switch path {
	case "/v1/plan":
		return "plan"
	case "/v1/plan/batch":
		return "batch"
	case "/metrics":
		return "metrics"
	case "/healthz":
		return "healthz"
	case "/trace":
		return "trace"
	case "/":
		return "index"
	}
	return "other"
}

// knownRoutes is the full route vocabulary; redSet precreates a metric
// row per route so the request path never takes a lock for routes.
var knownRoutes = []string{"plan", "batch", "metrics", "healthz", "trace", "index", "other"}

// maxTenantMetrics bounds the number of distinct per-tenant metric
// rows; later tenants aggregate into the "overflow" row.
const maxTenantMetrics = 256

type routeMetrics struct {
	// classes[i] counts responses with status in [i*100, i*100+99];
	// indexes 2..5 are the interesting ones (2xx..5xx).
	classes [6]*telemetry.Counter
	ns      *telemetry.Histogram
}

type tenantMetrics struct {
	requests  *telemetry.Counter
	errors    *telemetry.Counter // 5xx
	throttled *telemetry.Counter // 429
	ns        *telemetry.Histogram
}

type redSet struct {
	routes map[string]*routeMetrics

	mu      sync.RWMutex
	tenants map[string]*tenantMetrics
}

func newRedSet() *redSet {
	reg := telemetry.Default()
	rs := &redSet{
		routes:  make(map[string]*routeMetrics, len(knownRoutes)),
		tenants: make(map[string]*tenantMetrics),
	}
	classNames := [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for _, route := range knownRoutes {
		rm := &routeMetrics{ns: reg.Histogram("hpfd.route." + route + ".ns")}
		for i, class := range classNames {
			rm.classes[i] = reg.Counter("hpfd.route." + route + "." + class)
		}
		rs.routes[route] = rm
	}
	return rs
}

// sanitizeTenant maps an arbitrary X-Tenant header value onto a bounded
// metric-name-safe token.
func sanitizeTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	if len(tenant) > 64 {
		tenant = tenant[:64]
	}
	var b strings.Builder
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (rs *redSet) tenant(name string) *tenantMetrics {
	rs.mu.RLock()
	tm, ok := rs.tenants[name]
	rs.mu.RUnlock()
	if ok {
		return tm
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if tm, ok = rs.tenants[name]; ok {
		return tm
	}
	if len(rs.tenants) >= maxTenantMetrics {
		if tm, ok = rs.tenants["overflow"]; ok {
			return tm
		}
		name = "overflow"
	}
	reg := telemetry.Default()
	prefix := "hpfd.tenant." + name + "."
	tm = &tenantMetrics{
		requests:  reg.Counter(prefix + "requests"),
		errors:    reg.Counter(prefix + "errors"),
		throttled: reg.Counter(prefix + "throttled"),
		ns:        reg.Histogram(prefix + "ns"),
	}
	rs.tenants[name] = tm
	return tm
}

// record folds one finished request into the route and tenant rows.
func (rs *redSet) record(route, tenant string, status int, d time.Duration) {
	ns := d.Nanoseconds()
	rm := rs.routes[route]
	class := status / 100
	if class < 0 || class > 5 {
		class = 0
	}
	rm.classes[class].Inc()
	rm.ns.Observe(ns)

	tm := rs.tenant(sanitizeTenant(tenant))
	tm.requests.Inc()
	tm.ns.Observe(ns)
	if status >= 500 {
		tm.errors.Inc()
	}
	if status == 429 {
		tm.throttled.Inc()
	}
}

// sloWindowSeconds is the tracker's ring span: large enough for the
// 5-minute burn window.
const sloWindowSeconds = 300

type sloBucket struct {
	sec         int64 // unix second this bucket currently holds
	total, over int64
}

// sloTracker maintains per-second request/over-budget counts in a ring
// of sloWindowSeconds buckets, from which burn rates over sliding
// windows are computed on demand (when /metrics is scraped).
type sloTracker struct {
	target time.Duration
	now    func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets [sloWindowSeconds]sloBucket
}

func newSLOTracker(target time.Duration, now func() time.Time) *sloTracker {
	if now == nil {
		now = time.Now
	}
	return &sloTracker{target: target, now: now}
}

func (t *sloTracker) record(d time.Duration) {
	sec := t.now().Unix()
	t.mu.Lock()
	b := &t.buckets[sec%sloWindowSeconds]
	if b.sec != sec {
		b.sec, b.total, b.over = sec, 0, 0
	}
	b.total++
	if d > t.target {
		b.over++
	}
	t.mu.Unlock()
}

// burnBP returns the fraction of requests over the latency budget in
// the last window seconds, in basis points (10000 = every request blew
// the budget); 0 when the window saw no requests.
func (t *sloTracker) burnBP(window int64) int64 {
	if window > sloWindowSeconds {
		window = sloWindowSeconds
	}
	cutoff := t.now().Unix() - window
	var total, over int64
	t.mu.Lock()
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.sec > cutoff {
			total += b.total
			over += b.over
		}
	}
	t.mu.Unlock()
	if total == 0 {
		return 0
	}
	return over * 10000 / total
}

// sloGaugeNames are the computed gauges an SLO-enabled server registers;
// Close unregisters them by the same list.
var sloGaugeNames = []string{"hpfd.slo.burn_bp_1m", "hpfd.slo.burn_bp_5m"}

// register publishes the burn-rate gauges and the static target.
func (t *sloTracker) register() error {
	reg := telemetry.Default()
	reg.Gauge("hpfd.slo.target_ns").Set(t.target.Nanoseconds())
	if err := reg.RegisterGaugeFunc("hpfd.slo.burn_bp_1m", func() int64 { return t.burnBP(60) }); err != nil {
		return err
	}
	if err := reg.RegisterGaugeFunc("hpfd.slo.burn_bp_5m", func() int64 { return t.burnBP(300) }); err != nil {
		reg.UnregisterGaugeFunc("hpfd.slo.burn_bp_1m")
		return err
	}
	return nil
}
