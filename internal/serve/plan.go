package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plancache"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// PlanRequest is the key tuple of one plan compilation: the cyclic(k)
// layout over p processors, the array extent n, and the regular section
// l:u:s. It is exactly the paper's (p, k, l, u, s) input, which makes
// the compiled response a pure function of the request — the property
// the ETag and the coalescing cache both rely on.
type PlanRequest struct {
	P int64 `json:"p"`           // processor count
	K int64 `json:"k"`           // cyclic block size
	L int64 `json:"l"`           // section lower bound
	U int64 `json:"u"`           // section upper bound (inclusive)
	S int64 `json:"s"`           // section stride (> 0)
	N int64 `json:"n,omitempty"` // array extent; defaults to u+1
}

// normalize applies defaults and validates the tuple, returning the
// canonical key every equivalent spelling maps to.
func (r PlanRequest) normalize() (PlanRequest, error) {
	if r.N == 0 {
		r.N = r.U + 1
	}
	if r.P < 1 {
		return r, fmt.Errorf("p = %d: processor count must be >= 1", r.P)
	}
	if r.K < 1 {
		return r, fmt.Errorf("k = %d: block size must be >= 1", r.K)
	}
	if r.S < 1 {
		return r, fmt.Errorf("s = %d: stride must be >= 1 (normalize negative strides first)", r.S)
	}
	if r.L < 0 {
		return r, fmt.Errorf("l = %d: array indices start at 0", r.L)
	}
	if r.U < r.L {
		return r, fmt.Errorf("section %d:%d:%d is empty", r.L, r.U, r.S)
	}
	if r.N <= r.U {
		return r, fmt.Errorf("section upper bound %d outside array [0, %d)", r.U, r.N)
	}
	// Hard caps keep one hostile request from pinning a compile worker:
	// the response carries O(p·k) gap entries.
	const maxP, maxK, maxN = 1 << 16, 1 << 20, 1 << 40
	if r.P > maxP {
		return r, fmt.Errorf("p = %d exceeds the service limit %d", r.P, maxP)
	}
	if r.K > maxK {
		return r, fmt.Errorf("k = %d exceeds the service limit %d", r.K, maxK)
	}
	if r.N > maxN {
		return r, fmt.Errorf("n = %d exceeds the service limit %d", r.N, maxN)
	}
	return r, nil
}

// RankPlan is one processor's compiled access plan: the global start
// index, the local start address, the owned-element count, the selected
// node-code kernel, and the AM gap table (cyclic; omitted when the rank
// owns at most one element).
type RankPlan struct {
	Rank       int64   `json:"rank"`
	Start      int64   `json:"start"`       // global index of first owned element, -1 if none
	StartLocal int64   `json:"start_local"` // local memory address of the first element
	Count      int64   `json:"count"`
	Kernel     string  `json:"kernel"`
	Gaps       []int64 `json:"gaps,omitempty"`
}

// Transitions is the shared offset-indexed transition table of the
// configuration (Figure 8(d) in processor-independent form): one
// (gap, successor) pair per local offset serves every rank.
type Transitions struct {
	Delta []int64 `json:"delta"`
	Next  []int64 `json:"next"`
}

// PlanDoc is the hpfd/v1 response document for one key.
type PlanDoc struct {
	Schema      string       `json:"schema"` // "hpfd/v1"
	Key         PlanRequest  `json:"key"`
	Layout      string       `json:"layout"` // e.g. "cyclic(8) on 4 procs"
	SingleCycle bool         `json:"single_cycle"`
	Transitions *Transitions `json:"transitions,omitempty"`
	Ranks       []RankPlan   `json:"ranks"`
	TotalCount  int64        `json:"total_count"`
}

// PlanDocSchema tags the plan response document format.
const PlanDocSchema = "hpfd/v1"

// compiledPlan is what the server caches per key: the marshaled
// response body and its content hash. Both are immutable, so cached
// plans are served concurrently without copies.
type compiledPlan struct {
	body []byte
	etag string
}

// compile builds the full plan document for a normalized request: the
// shared AM-table set (through the process-wide coalescing table
// cache), every rank's access sequence and selected kernel, and the
// serialized body with its deterministic ETag. Each phase records a
// child span of the caller's build span (hpfd.tables, hpfd.select,
// hpfd.encode) so per-phase attribution is visible in request traces.
func compile(ctx context.Context, req PlanRequest) (*compiledPlan, error) {
	layout, err := dist.New(req.P, req.K)
	if err != nil {
		return nil, err
	}
	sec := section.Section{Lo: req.L, Hi: req.U, Stride: req.S}
	asc, _ := sec.Ascending()
	_, tspan := telemetry.StartSpan(ctx, "hpfd.tables")
	ts, err := plancache.Tables(req.P, req.K, asc.Lo, asc.Stride)
	tspan.End()
	if err != nil {
		return nil, err
	}
	doc := PlanDoc{
		Schema:      PlanDocSchema,
		Key:         req,
		Layout:      layout.String(),
		SingleCycle: ts.SingleCycle(),
		Ranks:       make([]RankPlan, req.P),
	}
	delta, next, hasTables := ts.Transitions()
	if hasTables {
		doc.Transitions = &Transitions{Delta: delta, Next: next}
	}
	u := asc.Last()
	_, sspan := telemetry.StartSpan(ctx, "hpfd.select")
	for m := int64(0); m < req.P; m++ {
		rp, err := compileRank(ts, layout, asc, u, m, delta, next)
		if err != nil {
			sspan.End()
			return nil, err
		}
		doc.Ranks[m] = rp
		doc.TotalCount += rp.Count
	}
	sspan.End()
	_, espan := telemetry.StartSpan(ctx, "hpfd.encode")
	defer espan.End()
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	return &compiledPlan{
		body: body,
		etag: `"` + hex.EncodeToString(sum[:16]) + `"`,
	}, nil
}

// compileRank computes one processor's bounded sequence and runs the
// kernel selector over it, mirroring what internal/hpf stores in its
// cached section plans.
func compileRank(ts *core.TableSet, layout dist.Layout, asc section.Section,
	u, m int64, delta, next []int64) (RankPlan, error) {
	pr := core.Problem{P: layout.P(), K: layout.K(), L: asc.Lo, S: asc.Stride, M: m}
	count, err := pr.Count(u)
	if err != nil {
		return RankPlan{}, err
	}
	rp := RankPlan{Rank: m, Start: -1, StartLocal: -1}
	if count == 0 {
		rp.Kernel = codegen.KindNone.String()
		return rp, nil
	}
	seq, err := ts.Sequence(m)
	if err != nil {
		return RankPlan{}, err
	}
	lastGlobal, err := pr.Last(u)
	if err != nil {
		return RankPlan{}, err
	}
	kernel := codegen.Select(codegen.Spec{
		Problem: pr,
		Start:   seq.StartLocal,
		Last:    layout.Local(lastGlobal),
		Count:   count,
		Gaps:    seq.Gaps,
		Delta:   delta,
		Next:    next,
	})
	rp.Start = seq.Start
	rp.StartLocal = seq.StartLocal
	rp.Count = count
	rp.Kernel = kernel.Kind().String()
	rp.Gaps = seq.Gaps
	return rp, nil
}
