// Package serve is the hpfd plan-compilation service: an HTTP/JSON
// front end over the paper's address-generation compiler. A plan — the
// AM-table set, per-rank access sequences and selected node-code
// kernels for one (p, k, l, u, s) key — is a pure function of its key,
// which makes it ideal service material: responses carry deterministic
// ETags so clients and proxies can cache, identical concurrent misses
// coalesce onto one compilation (the plancache singleflight path), and
// a warm key is served straight from memory.
//
// The operational surface is deliberately boring: per-tenant
// token-bucket quotas keyed by the X-Tenant header, bounded in-flight
// compiles with 429 + Retry-After on overload, /metrics—/healthz—/trace
// from the shared telemetry handler, and hpfd.* counters and histograms
// for everything the service does.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/plancache"
	"repro/internal/telemetry"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a serving-grade default.
type Config struct {
	// CacheCapacity bounds the compiled-plan LRU (default 4096 keys).
	CacheCapacity int
	// MaxInflight bounds concurrently running compiles; further cold
	// misses are refused with 429 + Retry-After (default 64).
	MaxInflight int
	// TenantRate is the per-tenant steady-state request rate in
	// requests/second; <= 0 disables quota enforcement (the default).
	TenantRate float64
	// TenantBurst is the per-tenant burst allowance (default 32).
	TenantBurst float64
	// MaxBatch bounds the number of keys in one batch request
	// (default 256).
	MaxBatch int
	// NoCoalesce serves every cold miss with its own compilation — the
	// pre-singleflight behavior, kept as the measurable baseline for
	// the thundering-herd benchmark. Never enable it in production.
	NoCoalesce bool
	// MetricsName, when non-empty, registers the plan cache's counters
	// as plancache.<MetricsName>.* gauges in the default telemetry
	// registry; Close unregisters them. cmd/hpfd uses "hpfd.plans".
	MetricsName string
	// Logger, when non-nil, receives a structured access-log record per
	// request plus service lifecycle events. nil disables access logging.
	Logger *slog.Logger
	// SLOTarget, when positive, publishes SLO burn-rate gauges
	// (hpfd.slo.*): the fraction of requests slower than this budget
	// over 1- and 5-minute sliding windows. Close unregisters them.
	SLOTarget time.Duration

	// compileHook, when set, runs inside every plan compilation (after
	// admission, before the actual build) — the test seam that makes
	// compiles observably slow for shutdown-drain and herd tests.
	compileHook func(PlanRequest)
	// sloNow, when set, replaces the SLO tracker's clock in tests.
	sloNow func() time.Time
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 4096
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server compiles and serves plans. Create with New, mount Handler on
// an http.Server, and Close when done (tests create many servers; Close
// releases the telemetry gauge names).
type Server struct {
	cfg    Config
	cache  *plancache.Cache[PlanRequest, *compiledPlan]
	quotas *quotas
	sem    chan struct{}
	mux    *http.ServeMux
	logger *slog.Logger
	red    *redSet
	slo    *sloTracker

	requests    *telemetry.Counter
	ok          *telemetry.Counter
	notModified *telemetry.Counter
	quota429    *telemetry.Counter
	overload429 *telemetry.Counter
	badRequest  *telemetry.Counter
	failures    *telemetry.Counter
	inflight    *telemetry.Gauge
	compileNs   *telemetry.Histogram
	requestNs   *telemetry.Histogram
}

func hashPlanRequest(r PlanRequest) uint64 {
	h := plancache.Mix(plancache.Mix(plancache.Seed, r.P), r.K)
	h = plancache.Mix(plancache.Mix(h, r.L), r.U)
	return plancache.Mix(plancache.Mix(h, r.S), r.N)
}

// New builds a Server from cfg. The returned server is ready to serve;
// registering its cache gauges (MetricsName) is the only fallible step.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := telemetry.Default()
	s := &Server{
		cfg:    cfg,
		cache:  plancache.New[PlanRequest, *compiledPlan](cfg.CacheCapacity, hashPlanRequest),
		quotas: newQuotas(cfg.TenantRate, cfg.TenantBurst),
		sem:    make(chan struct{}, cfg.MaxInflight),

		requests:    reg.Counter("hpfd.requests"),
		ok:          reg.Counter("hpfd.responses_ok"),
		notModified: reg.Counter("hpfd.responses_304"),
		quota429:    reg.Counter("hpfd.responses_429_quota"),
		overload429: reg.Counter("hpfd.responses_429_overload"),
		badRequest:  reg.Counter("hpfd.responses_bad_request"),
		failures:    reg.Counter("hpfd.responses_error"),
		inflight:    reg.Gauge("hpfd.inflight_compiles"),
		compileNs:   reg.Histogram("hpfd.compile_ns"),
		requestNs:   reg.Histogram("hpfd.request_ns"),
	}
	if cfg.MetricsName != "" {
		if err := s.cache.Register(cfg.MetricsName); err != nil {
			return nil, err
		}
	}
	s.logger = cfg.Logger
	s.red = newRedSet()
	if cfg.SLOTarget > 0 {
		s.slo = newSLOTracker(cfg.SLOTarget, cfg.sloNow)
		if err := s.slo.register(); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/plan/batch", s.handleBatch)
	tel := telemetry.Handler()
	s.mux.Handle("/metrics", tel)
	s.mux.Handle("/healthz", tel)
	s.mux.Handle("/trace", tel)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "hpfd plan-compilation service\nendpoints: POST|GET /v1/plan  POST /v1/plan/batch  /metrics /healthz /trace\n")
	})
	return s, nil
}

// Handler returns the service's HTTP surface, wrapped in the
// request-scoped observability middleware (trace identity, root span,
// access log, RED/SLO accounting).
func (s *Server) Handler() http.Handler { return s.observe(s.mux) }

// Stats snapshots the compiled-plan cache counters (Misses = plans
// actually compiled, Coalesced = herd waiters that reused an in-flight
// compile).
func (s *Server) Stats() plancache.Stats { return s.cache.Stats() }

// Close releases the telemetry gauge names registered by New so another
// server (a test, a restart) can reuse them. It does not stop in-flight
// requests; that is the owning http.Server's Shutdown.
func (s *Server) Close() {
	reg := telemetry.Default()
	if s.cfg.MetricsName != "" {
		for _, suffix := range []string{"hits", "misses", "evictions", "entries", "coalesced"} {
			reg.UnregisterGaugeFunc("plancache." + s.cfg.MetricsName + "." + suffix)
		}
	}
	if s.slo != nil {
		for _, name := range sloGaugeNames {
			reg.UnregisterGaugeFunc(name)
		}
	}
}

// errOverloaded marks a compile refused by admission control; the
// handler maps it to 429 + Retry-After.
var errOverloaded = errors.New("serve: compile capacity exhausted")

// plan returns the compiled plan for req (normalizing it first),
// through the coalescing cache, reporting how the lookup was satisfied.
// Admission control bounds only actual compiles: cache hits and
// coalesced waiters are never refused.
//
// The span layout mirrors the singleflight structure: the winning
// caller's trace carries an hpfd.build span (with hpfd.tables /
// hpfd.select / hpfd.encode children from compile); the builder
// publishes that span's ID through the flight note, and every coalesced
// waiter records an hpfd.wait span in its *own* trace whose Link names
// the build span — the cross-trace edge hpfprof -serve stitches the
// coalescing tree from.
func (s *Server) plan(ctx context.Context, req PlanRequest) (*compiledPlan, plancache.FlightOutcome, error) {
	key, err := req.normalize()
	if err != nil {
		return nil, plancache.FlightHit, &badRequestError{err}
	}
	build := func(note func(uint64)) (*compiledPlan, error) {
		bctx, bspan := telemetry.StartSpan(ctx, "hpfd.build")
		if bspan.Recording() {
			note(bspan.Context().Span)
		}
		defer bspan.End()
		select {
		case s.sem <- struct{}{}:
		default:
			return nil, errOverloaded
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.cfg.compileHook != nil {
			s.cfg.compileHook(key)
		}
		t0 := time.Now()
		cp, err := compile(bctx, key)
		s.compileNs.Observe(time.Since(t0).Nanoseconds())
		return cp, err
	}
	if s.cfg.NoCoalesce {
		// The pre-singleflight code path: concurrent misses each build.
		if cp, ok := s.cache.Get(key); ok {
			return cp, plancache.FlightHit, nil
		}
		cp, err := build(func(uint64) {})
		if err != nil {
			return nil, plancache.FlightBuilt, err
		}
		s.cache.Put(key, cp)
		return cp, plancache.FlightBuilt, nil
	}
	var waitStart int64
	if tr := telemetry.ActiveTracer(); tr != nil {
		waitStart = tr.Now()
	}
	cp, outcome, buildSpan, err := s.cache.GetOrComputeFlight(key, build)
	if outcome == plancache.FlightCoalesced {
		// The wait span is only known to have existed once the winning
		// build finishes, so it is recorded after the fact, backdated to
		// when this caller started waiting.
		_, ws := telemetry.StartSpanAt(ctx, "hpfd.wait", waitStart)
		ws.EndLink(buildSpan)
	}
	return cp, outcome, err
}

// badRequestError wraps a key-validation failure so the handlers can
// distinguish caller errors (400) from service failures (500).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }

// maxBodyBytes bounds request bodies; a plan key is a handful of
// integers, a batch a few thousand.
const maxBodyBytes = 1 << 20

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.requestNs.Observe(time.Since(t0).Nanoseconds()) }()
	s.requests.Inc()
	if !s.admitTenant(w, r) {
		return
	}
	var req PlanRequest
	switch r.Method {
	case http.MethodGet:
		var err error
		if req, err = planRequestFromQuery(r); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	case http.MethodPost:
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	cp, outcome, err := s.plan(r.Context(), req)
	if err != nil {
		setOutcome(r.Context(), "error")
		s.writePlanError(w, err)
		return
	}
	setOutcome(r.Context(), outcome.String())
	// The plan is immutable and keyed by its inputs, so the ETag is
	// permanent: a client or proxy holding a matching copy never needs
	// the body again.
	w.Header().Set("ETag", cp.etag)
	w.Header().Set("Cache-Control", "public, max-age=86400, immutable")
	if r.Header.Get("If-None-Match") == cp.etag {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.ok.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(cp.body)
}

// batchRequest and batchResult are the /v1/plan/batch wire types. Each
// key succeeds or fails independently; one bad key never spoils the
// batch (partial failure, not all-or-nothing).
type batchRequest struct {
	Requests []PlanRequest `json:"requests"`
}

type batchResult struct {
	ETag  string          `json:"etag,omitempty"`
	Plan  json.RawMessage `json:"plan,omitempty"`
	Error string          `json:"error,omitempty"`
}

type batchResponse struct {
	Schema  string        `json:"schema"` // "hpfd/batch/v1"
	Results []batchResult `json:"results"`
}

// BatchSchema tags the batch response document format.
const BatchSchema = "hpfd/batch/v1"

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.requestNs.Observe(time.Since(t0).Nanoseconds()) }()
	s.requests.Inc()
	if !s.admitTenant(w, r) {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var breq batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&breq); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if len(breq.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d keys exceeds the limit %d", len(breq.Requests), s.cfg.MaxBatch))
		return
	}
	resp := batchResponse{Schema: BatchSchema, Results: make([]batchResult, len(breq.Requests))}
	for i, req := range breq.Requests {
		cp, _, err := s.plan(r.Context(), req)
		if err != nil {
			resp.Results[i].Error = err.Error()
			var bad *badRequestError
			if errors.As(err, &bad) {
				s.badRequest.Inc()
			} else {
				s.failures.Inc()
			}
			continue
		}
		resp.Results[i].ETag = cp.etag
		resp.Results[i].Plan = json.RawMessage(cp.body)
	}
	s.ok.Inc()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(resp)
}

// admitTenant applies the per-tenant token bucket; on refusal it writes
// the 429 and reports false.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	_, span := telemetry.StartSpan(r.Context(), "hpfd.admission")
	ok, retryAfter := s.quotas.allow(r.Header.Get("X-Tenant"))
	span.End()
	if ok {
		return true
	}
	setOutcome(r.Context(), "quota")
	s.quota429.Inc()
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(retryAfter), 10))
	s.writeErrorStatus(w, http.StatusTooManyRequests, fmt.Errorf("tenant quota exhausted"))
	return false
}

// retryAfterSeconds rounds a refill duration up to whole seconds, with
// a floor of 1 (Retry-After: 0 invites an immediate retry storm).
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writePlanError maps a plan() failure onto the right status code.
func (s *Server) writePlanError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		s.writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, errOverloaded):
		s.overload429.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeErrorStatus(w, http.StatusTooManyRequests, err)
	default:
		s.failures.Inc()
		s.writeErrorStatus(w, http.StatusInternalServerError, err)
	}
}

// writeError counts a bad request and writes the error document.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.badRequest.Inc()
	s.writeErrorStatus(w, status, err)
}

// writeErrorStatus writes the JSON error document without counting.
func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// planRequestFromQuery parses ?p=&k=&l=&u=&s=&n= so plans are
// addressable by URL — the GET form proxies and browsers can cache.
func planRequestFromQuery(r *http.Request) (PlanRequest, error) {
	var req PlanRequest
	q := r.URL.Query()
	for _, f := range []struct {
		name     string
		dst      *int64
		required bool
	}{
		{"p", &req.P, true},
		{"k", &req.K, true},
		{"l", &req.L, false},
		{"u", &req.U, true},
		{"s", &req.S, true},
		{"n", &req.N, false},
	} {
		v := q.Get(f.name)
		if v == "" {
			if f.required {
				return req, fmt.Errorf("missing query parameter %q", f.name)
			}
			continue
		}
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("query parameter %q: %v", f.name, err)
		}
		*f.dst = x
	}
	return req, nil
}
