package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/plancache"
	"repro/internal/telemetry"
)

// TestHerdTrace is the tentpole acceptance test: a cold key hit by a
// concurrent herd yields one connected trace — request, admission, one
// build (with tables/select/encode children), and waiter spans in the
// other requests' traces linked to the build span — whose durations
// account for the builder's request span.
func TestHerdTrace(t *testing.T) {
	plancache.ResetTables()
	tr := telemetry.StartTracing(0, 1<<13)
	defer telemetry.StopTracing()

	const herd = 8
	var srv *Server
	srv, ts := newTestServer(t, Config{
		compileHook: func(PlanRequest) {
			time.Sleep(20 * time.Millisecond)
			deadline := time.Now().Add(10 * time.Second)
			for srv == nil || srv.Stats().Coalesced < herd-1 {
				if time.Now().After(deadline) {
					t.Error("waiters never coalesced")
					return
				}
				runtime.Gosched()
			}
		},
	})

	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	spans := map[string][]telemetry.Event{}
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindSpan && e.Span != 0 {
			spans[e.Name] = append(spans[e.Name], e)
		}
	}
	if n := len(spans["hpfd.build"]); n != 1 {
		t.Fatalf("got %d hpfd.build spans, want exactly 1 (herd of %d)", n, herd)
	}
	build := spans["hpfd.build"][0]
	if n := len(spans["hpfd.request"]); n != herd {
		t.Fatalf("got %d hpfd.request spans, want %d", n, herd)
	}
	if n := len(spans["hpfd.wait"]); n != herd-1 {
		t.Fatalf("got %d hpfd.wait spans, want %d", n, herd-1)
	}
	for _, w := range spans["hpfd.wait"] {
		if w.Link != build.Span {
			t.Errorf("wait span links to %x, want build span %x", w.Link, build.Span)
		}
		if w.TraceHi == build.TraceHi && w.TraceLo == build.TraceLo {
			t.Error("a wait span shares the builder's trace; waiters must be other requests")
		}
	}
	// The compile phases are children of the build span, in its trace.
	for _, phase := range []string{"hpfd.tables", "hpfd.select", "hpfd.encode"} {
		if n := len(spans[phase]); n != 1 {
			t.Fatalf("got %d %s spans, want 1", n, phase)
		}
		e := spans[phase][0]
		if e.Parent != build.Span || e.TraceHi != build.TraceHi || e.TraceLo != build.TraceLo {
			t.Errorf("%s span parent %x trace %x%x, want build %x %x%x",
				phase, e.Parent, e.TraceHi, e.TraceLo, build.Span, build.TraceHi, build.TraceLo)
		}
	}

	// The builder's own request span: same trace as the build span; the
	// admission + build durations must account for it (within slack —
	// the remainder is JSON write and handler overhead, far below the
	// 20 ms the compile hook sleeps).
	var reqSpan, admSpan *telemetry.Event
	for i := range spans["hpfd.request"] {
		e := &spans["hpfd.request"][i]
		if e.TraceHi == build.TraceHi && e.TraceLo == build.TraceLo {
			reqSpan = e
		}
	}
	for i := range spans["hpfd.admission"] {
		e := &spans["hpfd.admission"][i]
		if e.TraceHi == build.TraceHi && e.TraceLo == build.TraceLo {
			admSpan = e
		}
	}
	if reqSpan == nil || admSpan == nil {
		t.Fatal("builder's trace lacks a request or admission span")
	}
	if build.Parent != reqSpan.Span || admSpan.Parent != reqSpan.Span {
		t.Errorf("build parent %x, admission parent %x, want request span %x",
			build.Parent, admSpan.Parent, reqSpan.Span)
	}
	phaseSum := admSpan.Dur + build.Dur
	if phaseSum > reqSpan.Dur {
		t.Errorf("admission+build = %d ns exceeds the request span %d ns", phaseSum, reqSpan.Dur)
	}
	if phaseSum < reqSpan.Dur/2 {
		t.Errorf("admission+build = %d ns accounts for under half the request span %d ns", phaseSum, reqSpan.Dur)
	}
}

// TestTraceparentEcho: an inbound traceparent is joined — the response
// reports the same trace ID — and X-Request-ID is echoed when supplied,
// minted from the trace ID otherwise. This holds with tracing off:
// identity flows even when nothing is recorded.
func TestTraceparentEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	inbound := "00-" + traceID + "-b7ad6b7169203331-01"

	h := http.Header{}
	h.Set("traceparent", inbound)
	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, h)
	resp.Body.Close()
	tp := resp.Header.Get("traceparent")
	sc, ok := telemetry.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if sc.TraceID() != traceID {
		t.Errorf("response trace ID = %s, want inbound %s", sc.TraceID(), traceID)
	}
	if sc.SpanID() == "b7ad6b7169203331" {
		t.Error("response span ID equals the inbound span; the server must mint its own")
	}
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Errorf("X-Request-ID = %q, want the trace ID %q", got, traceID)
	}

	// Caller-supplied request ID is echoed verbatim.
	h.Set("X-Request-ID", "req-42")
	resp = postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, h)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "req-42" {
		t.Errorf("X-Request-ID = %q, want the echoed %q", got, "req-42")
	}

	// No inbound identity: a fresh valid traceparent and a request ID.
	resp = postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
	resp.Body.Close()
	if _, ok := telemetry.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
		t.Errorf("minted traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted")
	}
}

// TestAccessLogJSON: with a JSON slog logger configured, every request
// produces exactly one access-log line whose fields carry the route,
// status, cache outcome and trace identity.
func TestAccessLogJSON(t *testing.T) {
	plancache.ResetTables()
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&syncWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, Config{Logger: logger})

	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320},
		http.Header{"X-Tenant": []string{"acme"}})
	resp.Body.Close()
	resp = postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
	resp.Body.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d access-log lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for i, wantCache := range []string{"built", "hit"} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("log line %d is not JSON: %v\n%s", i, err, lines[i])
		}
		if rec["msg"] != "request" || rec["route"] != "plan" || rec["status"] != float64(200) {
			t.Errorf("line %d = %v", i, rec)
		}
		if rec["cache"] != wantCache {
			t.Errorf("line %d cache = %v, want %q", i, rec["cache"], wantCache)
		}
		trace, _ := rec["trace"].(string)
		if len(trace) != 32 {
			t.Errorf("line %d trace = %q, want 32 hex digits", i, trace)
		}
		if rec["request_id"] == "" {
			t.Errorf("line %d has no request_id", i)
		}
		if _, ok := rec["dur_ns"].(float64); !ok {
			t.Errorf("line %d has no dur_ns", i)
		}
	}
	if v, _ := json.Marshal(lines[0]); !bytes.Contains(v, []byte("acme")) {
		t.Errorf("first line lacks the tenant: %s", lines[0])
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestREDMetrics: per-route status-class counters and per-tenant rows
// advance with each response.
func TestREDMetrics(t *testing.T) {
	reg := telemetry.Default()
	ok2xx := reg.Counter("hpfd.route.plan.2xx").Value()
	bad4xx := reg.Counter("hpfd.route.plan.4xx").Value()

	_, ts := newTestServer(t, Config{})
	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320},
		http.Header{"X-Tenant": []string{"red-metrics-tenant"}})
	resp.Body.Close()
	resp = postPlan(t, ts.URL, PlanRequest{P: 0, K: 8, L: 4, U: 319, S: 9}, nil) // invalid key
	resp.Body.Close()

	if got := reg.Counter("hpfd.route.plan.2xx").Value() - ok2xx; got != 1 {
		t.Errorf("plan 2xx delta = %d, want 1", got)
	}
	if got := reg.Counter("hpfd.route.plan.4xx").Value() - bad4xx; got != 1 {
		t.Errorf("plan 4xx delta = %d, want 1", got)
	}
	if got := reg.Counter("hpfd.tenant.red-metrics-tenant.requests").Value(); got != 1 {
		t.Errorf("tenant requests = %d, want 1", got)
	}
	if got := reg.Histogram("hpfd.route.plan.ns").Count(); got < 2 {
		t.Errorf("plan duration histogram count = %d, want >= 2", got)
	}
}

func TestSanitizeTenant(t *testing.T) {
	for in, want := range map[string]string{
		"":                       "default",
		"acme":                   "acme",
		"a.b/c d":                "a_b_c_d",
		"UPPER-low_9":            "UPPER-low_9",
		strings.Repeat("x", 100): strings.Repeat("x", 64),
	} {
		if got := sanitizeTenant(in); got != want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSLOTracker drives the burn-rate ring with an injected clock.
func TestSLOTracker(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	tr := newSLOTracker(10*time.Millisecond, func() time.Time { return now })
	for i := 0; i < 3; i++ {
		tr.record(5 * time.Millisecond)
	}
	tr.record(20 * time.Millisecond)
	if got := tr.burnBP(60); got != 2500 {
		t.Errorf("burnBP(60) = %d, want 2500 (1 of 4 over budget)", got)
	}
	// Another second of all-over-budget requests shifts the 1m window.
	now = now.Add(time.Second)
	tr.record(time.Second)
	if got := tr.burnBP(60); got != 4000 {
		t.Errorf("burnBP(60) = %d, want 4000 (2 of 5)", got)
	}
	// Far in the future every bucket is stale.
	now = now.Add(10 * time.Minute)
	if got := tr.burnBP(300); got != 0 {
		t.Errorf("burnBP(300) after idle = %d, want 0", got)
	}
	// A window larger than the ring clamps rather than double-counting.
	if got := tr.burnBP(10 * sloWindowSeconds); got != 0 {
		t.Errorf("oversized window burn = %d, want 0", got)
	}
}

// TestSLOGauges: a server with an SLO target publishes the target and
// burn gauges, and an over-budget request registers in them.
func TestSLOGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{SLOTarget: time.Nanosecond})
	resp := postPlan(t, ts.URL, PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}, nil)
	resp.Body.Close()

	snap := telemetry.Default().Snapshot()
	if got := snap.Gauges["hpfd.slo.target_ns"]; got != 1 {
		t.Errorf("slo.target_ns = %d, want 1", got)
	}
	if got := snap.Gauges["hpfd.slo.burn_bp_1m"]; got != 10000 {
		t.Errorf("slo.burn_bp_1m = %d, want 10000 (every request over a 1ns budget)", got)
	}
	if got := snap.Gauges["hpfd.slo.burn_bp_5m"]; got != 10000 {
		t.Errorf("slo.burn_bp_5m = %d, want 10000", got)
	}
}

// TestSLOGaugesReleased: Close unregisters the burn gauges so the next
// server (a restart, another test) can register its own.
func TestSLOGaugesReleased(t *testing.T) {
	for i := 0; i < 2; i++ {
		srv, err := New(Config{SLOTarget: time.Millisecond})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		srv.Close()
	}
}

// TestRetryAfterSeconds pins the rounding contract: durations round up
// to whole seconds with a floor of 1.
func TestRetryAfterSeconds(t *testing.T) {
	for d, want := range map[time.Duration]int64{
		0:                       1,
		time.Nanosecond:         1,
		time.Millisecond:        1,
		999 * time.Millisecond:  1,
		time.Second:             1,
		time.Second + 1:         2,
		1500 * time.Millisecond: 2,
		2 * time.Second:         2,
		90 * time.Second:        90,
		3600*time.Second - 1:    3600,
		3600 * time.Second:      3600,
		24 * 3600 * time.Second: 86400,
	} {
		if got := retryAfterSeconds(d); got != want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", d, got, want)
		}
	}
}

// TestQuotaRetryAfterSaturated: with a saturated token bucket the 429
// carries a Retry-After derived from the actual refill time, not the
// floor.
func TestQuotaRetryAfterSaturated(t *testing.T) {
	srv, ts := newTestServer(t, Config{TenantRate: 0.5, TenantBurst: 1})
	clock := time.Unix(5_000_000, 0)
	srv.quotas.now = func() time.Time { return clock }

	key := PlanRequest{P: 4, K: 8, L: 4, U: 319, S: 9, N: 320}
	h := http.Header{"X-Tenant": []string{"saturated"}}
	resp := postPlan(t, ts.URL, key, h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	// Bucket empty, no time passed: one token refills in 1/0.5 = 2 s.
	resp = postPlan(t, ts.URL, key, h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (deficit 1 token at 0.5/s)", got)
	}
	// Half the deficit refilled: 1 s remains.
	clock = clock.Add(time.Second)
	resp = postPlan(t, ts.URL, key, h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("still-saturated request status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
}
