// Package dist models HPF-style data distributions of one-dimensional
// index spaces (templates) over processors.
//
// The central type is Layout, a cyclic(k) distribution over p processors:
// the template is cut into contiguous blocks of k cells which are dealt to
// processors round-robin. HPF's block and cyclic distributions are the
// special cases cyclic(ceil(n/p)) and cyclic(1) (paper, Section 1).
//
// Visualizing the template as a matrix with rows of p·k cells (paper,
// Figure 1), a global index i decomposes into
//
//	row    = i div pk   (which course of blocks)
//	owner  = (i mod pk) div k
//	offset = i mod k    (position within its block)
//
// and the element lives at local address row·k + offset in its owner's
// memory, assuming the owner packs its blocks contiguously.
package dist

import (
	"fmt"

	"repro/internal/intmath"
)

// Layout is a one-dimensional cyclic(k) distribution over P processors.
// The zero value is not valid; use New.
type Layout struct {
	p, k int64
	pk   int64 // p*k, the row length
}

// New returns the cyclic(k) layout over p processors. It validates that
// p ≥ 1, k ≥ 1 and that p·k does not overflow.
func New(p, k int64) (Layout, error) {
	if p < 1 {
		return Layout{}, fmt.Errorf("dist: processor count %d < 1", p)
	}
	if k < 1 {
		return Layout{}, fmt.Errorf("dist: block size %d < 1", k)
	}
	pk, err := intmath.MulChecked(p, k)
	if err != nil {
		return Layout{}, fmt.Errorf("dist: p*k overflows: %v", err)
	}
	return Layout{p: p, k: k, pk: pk}, nil
}

// MustNew is New but panics on invalid arguments. Intended for tests,
// examples and compile-time-constant layouts.
func MustNew(p, k int64) Layout {
	l, err := New(p, k)
	if err != nil {
		panic(err)
	}
	return l
}

// Block returns the HPF block distribution of an n-cell template over p
// processors, i.e. cyclic(ceil(n/p)).
func Block(p, n int64) (Layout, error) {
	if n < 1 {
		return Layout{}, fmt.Errorf("dist: template size %d < 1", n)
	}
	if p < 1 {
		return Layout{}, fmt.Errorf("dist: processor count %d < 1", p)
	}
	return New(p, intmath.CeilDiv(n, p))
}

// Cyclic returns the HPF cyclic distribution over p processors, i.e.
// cyclic(1).
func Cyclic(p int64) (Layout, error) { return New(p, 1) }

// P returns the number of processors.
func (l Layout) P() int64 { return l.p }

// K returns the block size.
func (l Layout) K() int64 { return l.k }

// RowLen returns p·k, the number of template cells per course of blocks.
func (l Layout) RowLen() int64 { return l.pk }

// String implements fmt.Stringer.
func (l Layout) String() string {
	return fmt.Sprintf("cyclic(%d) over %d procs", l.k, l.p)
}

// Owner returns the processor owning global index i (i ≥ 0).
func (l Layout) Owner(i int64) int64 {
	return intmath.FloorMod(i, l.pk) / l.k
}

// Row returns the row (block course) of global index i, i.e. the index of
// the block holding i within its owner's local memory.
func (l Layout) Row(i int64) int64 {
	return intmath.FloorDiv(i, l.pk)
}

// Offset returns the offset of global index i within its block, in [0, k).
func (l Layout) Offset(i int64) int64 {
	return intmath.FloorMod(i, l.k)
}

// RowOffset returns the position of global index i within its row, in
// [0, pk). The paper calls this "i mod pk".
func (l Layout) RowOffset(i int64) int64 {
	return intmath.FloorMod(i, l.pk)
}

// Local returns the local memory address of global index i on its owning
// processor: row·k + offset.
func (l Layout) Local(i int64) int64 {
	return l.Row(i)*l.k + l.Offset(i)
}

// Global returns the global index of local address a on processor m. It is
// the inverse of Local restricted to indices owned by m.
func (l Layout) Global(m, a int64) int64 {
	return (a/l.k)*l.pk + m*l.k + a%l.k
}

// Owns reports whether processor m owns global index i.
func (l Layout) Owns(m, i int64) bool {
	return l.Owner(i) == m
}

// LocalCount returns the number of global indices in [0, n) owned by
// processor m — the size of m's local array segment for an n-cell template.
func (l Layout) LocalCount(m, n int64) int64 {
	if n <= 0 {
		return 0
	}
	fullRows := n / l.pk
	count := fullRows * l.k
	rem := n % l.pk // leftover cells [fullRows*pk, n) occupy row-offsets [0, rem)
	lo := m * l.k
	switch {
	case rem <= lo:
		// no leftover cells reach m's block in the last row
	case rem >= lo+l.k:
		count += l.k
	default:
		count += rem - lo
	}
	return count
}

// Coords returns the full (row, owner, offset) decomposition of global
// index i.
func (l Layout) Coords(i int64) (row, owner, offset int64) {
	return l.Row(i), l.Owner(i), l.Offset(i)
}

// BlockStart returns the smallest global index of the b-th block owned by
// processor m (b = row number).
func (l Layout) BlockStart(m, b int64) int64 {
	return b*l.pk + m*l.k
}
