package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("New(0,8) should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("New(4,0) should fail")
	}
	if _, err := New(1<<40, 1<<40); err == nil {
		t.Error("overflowing p*k should fail")
	}
	l, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.P() != 4 || l.K() != 8 || l.RowLen() != 32 {
		t.Errorf("layout fields wrong: %+v", l)
	}
}

func TestBlockAndCyclic(t *testing.T) {
	// block over n=100, p=4 -> cyclic(25)
	b, err := Block(4, 100)
	if err != nil || b.K() != 25 {
		t.Errorf("Block(4,100) k=%d err=%v, want 25", b.K(), err)
	}
	// n=101 -> ceil(101/4)=26
	b, _ = Block(4, 101)
	if b.K() != 26 {
		t.Errorf("Block(4,101) k=%d, want 26", b.K())
	}
	c, err := Cyclic(7)
	if err != nil || c.K() != 1 {
		t.Errorf("Cyclic(7) k=%d err=%v, want 1", c.K(), err)
	}
	if _, err := Block(4, 0); err == nil {
		t.Error("Block with n=0 should fail")
	}
}

// TestFigure1 checks the decomposition of the paper's Figure 1: cyclic(8)
// over 4 processors; element 108 has offset 4 in block 3 of processor 1.
func TestFigure1(t *testing.T) {
	l := MustNew(4, 8)
	row, owner, offset := l.Coords(108)
	if owner != 1 {
		t.Errorf("Owner(108) = %d, want 1", owner)
	}
	if row != 3 {
		t.Errorf("Row(108) = %d, want 3", row)
	}
	if offset != 4 {
		t.Errorf("Offset(108) = %d, want 4", offset)
	}
	// Section 3: element 108 has R^2 coordinates (x,y) = (12, 3):
	// x = row-offset 12, y = row 3.
	if l.RowOffset(108) != 12 {
		t.Errorf("RowOffset(108) = %d, want 12", l.RowOffset(108))
	}
}

func TestOwnerPattern(t *testing.T) {
	l := MustNew(4, 8)
	// First row: procs 0,0,...,0 (8x), 1 (8x), 2 (8x), 3 (8x); repeats.
	for i := int64(0); i < 96; i++ {
		want := (i % 32) / 8
		if got := l.Owner(i); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestLocalGlobalRoundTrip(t *testing.T) {
	layouts := []Layout{
		MustNew(4, 8), MustNew(1, 1), MustNew(7, 3), MustNew(32, 64),
		MustNew(1, 100), MustNew(100, 1),
	}
	for _, l := range layouts {
		for i := int64(0); i < 4*l.RowLen()+5; i++ {
			m := l.Owner(i)
			a := l.Local(i)
			if g := l.Global(m, a); g != i {
				t.Fatalf("%v: Global(%d, Local(%d)=%d) = %d, want %d",
					l, m, i, a, g, i)
			}
			if !l.Owns(m, i) {
				t.Fatalf("%v: Owns(%d, %d) = false", l, m, i)
			}
		}
	}
}

func TestLocalIsDenseAndOrdered(t *testing.T) {
	// The local addresses of the indices owned by m, in increasing global
	// order, must be exactly 0, 1, 2, ... (dense packing).
	l := MustNew(3, 5)
	for m := int64(0); m < 3; m++ {
		next := int64(0)
		for i := int64(0); i < 10*l.RowLen(); i++ {
			if l.Owner(i) != m {
				continue
			}
			if got := l.Local(i); got != next {
				t.Fatalf("m=%d: Local(%d) = %d, want %d", m, i, got, next)
			}
			next++
		}
	}
}

func TestLocalCount(t *testing.T) {
	l := MustNew(4, 8)
	for _, n := range []int64{0, 1, 7, 8, 9, 31, 32, 33, 64, 100, 320, 321} {
		for m := int64(0); m < 4; m++ {
			want := int64(0)
			for i := int64(0); i < n; i++ {
				if l.Owner(i) == m {
					want++
				}
			}
			if got := l.LocalCount(m, n); got != want {
				t.Errorf("LocalCount(m=%d, n=%d) = %d, want %d", m, n, got, want)
			}
		}
	}
}

func TestLocalCountProperty(t *testing.T) {
	f := func(p8, k8, m8 uint8, n16 uint16) bool {
		p := int64(p8%16) + 1
		k := int64(k8%16) + 1
		m := int64(m8) % p
		n := int64(n16 % 2048)
		l := MustNew(p, k)
		want := int64(0)
		for i := int64(0); i < n; i++ {
			if l.Owner(i) == m {
				want++
			}
		}
		return l.LocalCount(m, n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBlockStart(t *testing.T) {
	l := MustNew(4, 8)
	if got := l.BlockStart(1, 3); got != 104 {
		t.Errorf("BlockStart(1,3) = %d, want 104", got)
	}
	if got := l.BlockStart(0, 0); got != 0 {
		t.Errorf("BlockStart(0,0) = %d, want 0", got)
	}
	// The block starting at BlockStart(m,b) is owned by m for all k cells.
	for m := int64(0); m < 4; m++ {
		for b := int64(0); b < 3; b++ {
			start := l.BlockStart(m, b)
			for off := int64(0); off < 8; off++ {
				if l.Owner(start+off) != m {
					t.Fatalf("cell %d of block (%d,%d) not owned by %d",
						start+off, m, b, m)
				}
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := MustNewGrid(MustNew(2, 4), MustNew(3, 2))
	if g.Rank() != 2 || g.Procs() != 6 {
		t.Fatalf("rank=%d procs=%d", g.Rank(), g.Procs())
	}
	owner := g.Owner([]int64{5, 7})
	// dim0: cyclic(4) over 2: 5 mod 8 = 5 -> proc 1. dim1: cyclic(2) over 3:
	// 7 mod 6 = 1 -> proc 0.
	if owner[0] != 1 || owner[1] != 0 {
		t.Errorf("Owner([5,7]) = %v, want [1 0]", owner)
	}
	local := g.Local([]int64{5, 7})
	// dim0: row 0, offset 1 -> 1. dim1: row 1, offset 1 -> 1*2+1 = 3.
	if local[0] != 1 || local[1] != 3 {
		t.Errorf("Local([5,7]) = %v, want [1 3]", local)
	}
}

func TestGridRankRoundTrip(t *testing.T) {
	g := MustNewGrid(MustNew(2, 4), MustNew(3, 2), MustNew(4, 1))
	for r := int64(0); r < g.Procs(); r++ {
		c := g.Coords(r)
		if back := g.FlatRank(c); back != r {
			t.Fatalf("FlatRank(Coords(%d)=%v) = %d", r, c, back)
		}
	}
}

func TestGridLocalShape(t *testing.T) {
	g := MustNewGrid(MustNew(2, 4), MustNew(3, 2))
	extents := []int64{20, 13}
	total := int64(0)
	for r := int64(0); r < g.Procs(); r++ {
		sh := g.LocalShape(g.Coords(r), extents)
		total += sh[0] * sh[1]
	}
	if total != 20*13 {
		t.Errorf("sum of local volumes = %d, want %d", total, 20*13)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Error("empty grid should fail")
	}
}

func TestOwnerNegativeIndexPanicsOrWraps(t *testing.T) {
	// Negative global indices are not part of the public contract for
	// templates, but Owner uses Euclidean mod so it stays in range.
	l := MustNew(4, 8)
	if got := l.Owner(-1); got < 0 || got >= 4 {
		t.Errorf("Owner(-1) = %d out of range", got)
	}
}

func BenchmarkLocal(b *testing.B) {
	l := MustNew(32, 64)
	r := rand.New(rand.NewSource(42))
	idx := make([]int64, 1024)
	for i := range idx {
		idx[i] = r.Int63n(1 << 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Local(idx[i%len(idx)])
	}
}
