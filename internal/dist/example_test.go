package dist_test

import (
	"fmt"

	"repro/internal/dist"
)

// The decomposition of Figure 1: element 108 of a cyclic(8) distribution
// over 4 processors has offset 4 in block 3 of processor 1.
func ExampleLayout_Coords() {
	l := dist.MustNew(4, 8)
	row, owner, offset := l.Coords(108)
	fmt.Printf("element 108: block %d of processor %d, offset %d\n", row, owner, offset)
	fmt.Printf("local memory address: %d\n", l.Local(108))
	// Output:
	// element 108: block 3 of processor 1, offset 4
	// local memory address: 28
}

// HPF's block and cyclic distributions are special cases of cyclic(k).
func ExampleBlock() {
	b, _ := dist.Block(4, 100) // 100 elements over 4 processors
	c, _ := dist.Cyclic(4)
	fmt.Println(b)
	fmt.Println(c)
	// Output:
	// cyclic(25) over 4 procs
	// cyclic(1) over 4 procs
}

// Multidimensional arrays distribute each dimension independently.
func ExampleGrid() {
	g := dist.MustNewGrid(dist.MustNew(2, 4), dist.MustNew(3, 2))
	owner := g.Owner([]int64{5, 7})
	fmt.Printf("element (5,7) lives on grid processor (%d,%d), flat rank %d\n",
		owner[0], owner[1], g.FlatRank(owner))
	// Output:
	// element (5,7) lives on grid processor (1,0), flat rank 3
}
