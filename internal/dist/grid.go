package dist

import (
	"fmt"

	"repro/internal/intmath"
)

// Grid distributes a multidimensional template over a processor grid:
// one independent Layout per dimension (paper, Section 2: "alignments and
// distributions of each dimension are independent of one another").
//
// Processors are identified both by grid coordinates (one per dimension)
// and by a flattened rank in row-major order (last dimension fastest).
type Grid struct {
	dims []Layout
}

// NewGrid builds a Grid from per-dimension layouts. At least one dimension
// is required, and the total processor count must not overflow.
func NewGrid(dims ...Layout) (*Grid, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dist: grid needs at least one dimension")
	}
	total := int64(1)
	for _, d := range dims {
		var err error
		total, err = intmath.MulChecked(total, d.P())
		if err != nil {
			return nil, fmt.Errorf("dist: processor grid too large: %v", err)
		}
	}
	g := &Grid{dims: append([]Layout(nil), dims...)}
	return g, nil
}

// MustNewGrid is NewGrid but panics on error.
func MustNewGrid(dims ...Layout) *Grid {
	g, err := NewGrid(dims...)
	if err != nil {
		panic(err)
	}
	return g
}

// Rank returns the number of dimensions.
func (g *Grid) Rank() int { return len(g.dims) }

// Dim returns the layout of dimension d.
func (g *Grid) Dim(d int) Layout { return g.dims[d] }

// Procs returns the total number of processors in the grid.
func (g *Grid) Procs() int64 {
	total := int64(1)
	for _, d := range g.dims {
		total *= d.P()
	}
	return total
}

// Owner returns the grid coordinates of the processor owning the template
// cell at the given index vector.
func (g *Grid) Owner(index []int64) []int64 {
	if len(index) != len(g.dims) {
		panic("dist: index rank mismatch")
	}
	owner := make([]int64, len(index))
	for d, i := range index {
		owner[d] = g.dims[d].Owner(i)
	}
	return owner
}

// FlatRank converts grid coordinates to a flattened processor rank
// (row-major, last dimension fastest).
func (g *Grid) FlatRank(coords []int64) int64 {
	if len(coords) != len(g.dims) {
		panic("dist: coords rank mismatch")
	}
	rank := int64(0)
	for d, c := range coords {
		if c < 0 || c >= g.dims[d].P() {
			panic(fmt.Sprintf("dist: coordinate %d out of range [0,%d) in dim %d",
				c, g.dims[d].P(), d))
		}
		rank = rank*g.dims[d].P() + c
	}
	return rank
}

// Coords converts a flattened processor rank back to grid coordinates.
func (g *Grid) Coords(rank int64) []int64 {
	coords := make([]int64, len(g.dims))
	for d := len(g.dims) - 1; d >= 0; d-- {
		p := g.dims[d].P()
		coords[d] = rank % p
		rank /= p
	}
	return coords
}

// Local returns the per-dimension local addresses of the template cell at
// the given index vector on its owning processor.
func (g *Grid) Local(index []int64) []int64 {
	local := make([]int64, len(index))
	for d, i := range index {
		local[d] = g.dims[d].Local(i)
	}
	return local
}

// LocalShape returns the per-dimension local array extents on the
// processor with the given grid coordinates, for a template with the given
// global extents.
func (g *Grid) LocalShape(coords, extents []int64) []int64 {
	shape := make([]int64, len(g.dims))
	for d := range g.dims {
		shape[d] = g.dims[d].LocalCount(coords[d], extents[d])
	}
	return shape
}
