package align

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
)

// bruteStorage returns the array indices in [0, n) owned by proc, in
// increasing order — the definition of the packed local storage.
func bruteStorage(m *Map, proc, n int64) []int64 {
	var out []int64
	for i := int64(0); i < n; i++ {
		if m.Owner(i) == proc {
			out = append(out, i)
		}
	}
	return out
}

func mustMap(t *testing.T, layout dist.Layout, al Alignment) *Map {
	t.Helper()
	m, err := NewMap(layout, al)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapValidation(t *testing.T) {
	l := dist.MustNew(4, 8)
	if _, err := NewMap(l, Alignment{A: 0, B: 5}); err == nil {
		t.Error("a=0 should be rejected")
	}
	if _, err := NewMap(l, Identity); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
	if _, err := NewMap(l, Alignment{A: 1 << 60, B: 0}); err == nil {
		t.Error("huge alignment should be rejected")
	}
}

func TestIdentityMatchesLayout(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := mustMap(t, layout, Identity)
	for i := int64(0); i < 200; i++ {
		if m.Owner(i) != layout.Owner(i) {
			t.Fatalf("identity Owner(%d) = %d, want %d", i, m.Owner(i), layout.Owner(i))
		}
	}
	// Under identity alignment the packed storage rank equals the layout's
	// local address.
	st, err := m.NewStorage(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if layout.Owner(i) != 2 {
			continue
		}
		if got := st.Rank(i); got != layout.Local(i) {
			t.Fatalf("Rank(%d) = %d, want Local = %d", i, got, layout.Local(i))
		}
	}
}

func TestStorageRankAgainstBrute(t *testing.T) {
	aligns := []Alignment{
		{A: 1, B: 0}, {A: 1, B: 5}, {A: 2, B: 0}, {A: 3, B: 7},
		{A: 5, B: -4}, {A: -1, B: 0}, {A: -2, B: 100}, {A: 7, B: 1},
	}
	layouts := []dist.Layout{
		dist.MustNew(4, 8), dist.MustNew(3, 5), dist.MustNew(1, 4), dist.MustNew(8, 1),
	}
	for _, layout := range layouts {
		for _, al := range aligns {
			m := mustMap(t, layout, al)
			n := 4 * layout.RowLen() * (intmath_abs(al.A) + 1)
			for proc := int64(0); proc < layout.P(); proc++ {
				st, err := m.NewStorage(proc)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteStorage(m, proc, n)
				if got := st.LocalCount(n); got != int64(len(want)) {
					t.Errorf("%v %v proc %d: LocalCount(%d) = %d, want %d",
						layout, al, proc, n, got, len(want))
				}
				for rank, i := range want {
					if got := st.Rank(i); got != int64(rank) {
						t.Errorf("%v %v proc %d: Rank(%d) = %d, want %d",
							layout, al, proc, i, got, rank)
					}
					if !st.Owns(i) {
						t.Errorf("%v %v proc %d: Owns(%d) = false", layout, al, proc, i)
					}
				}
			}
		}
	}
}

func intmath_abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func TestAddressesAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 600; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(8) + 1
		a := r.Int63n(9) - 4
		if a == 0 {
			a = 5
		}
		b := r.Int63n(40) - 20
		layout := dist.MustNew(p, k)
		m := mustMap(t, layout, Alignment{A: a, B: b})
		s := r.Int63n(15) + 1
		if r.Intn(2) == 0 {
			s = -s
		}
		l := r.Int63n(60)
		span := r.Int63n(30 * (intmath_abs(s) + 1))
		var u int64
		if s > 0 {
			u = l + span
		} else {
			u = l - span
			if u < 0 {
				u = 0
			}
		}
		proc := r.Int63n(p)

		// Brute force: walk the section in order; for owned elements record
		// the packed-storage rank (count of owned indices below).
		var want []int64
		step := s
		for i := l; (step > 0 && i <= u) || (step < 0 && i >= u); i += step {
			if i < 0 {
				break
			}
			if m.Owner(i) == proc {
				// rank by brute force
				var rank int64
				for x := int64(0); x < i; x++ {
					if m.Owner(x) == proc {
						rank++
					}
				}
				want = append(want, rank)
			}
		}
		got, err := m.Addresses(proc, l, u, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("p=%d k=%d a=%d b=%d l=%d u=%d s=%d proc=%d:\n got  %v\n want %v",
				p, k, a, b, l, u, s, proc, got, want)
		}
	}
}

func TestAccessGapsArePeriodic(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := mustMap(t, layout, Alignment{A: 3, B: 2})
	sq, err := m.Access(1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Empty() {
		t.Skip("processor 1 owns nothing for this pattern")
	}
	// The gap stream must be consistent: walking two periods by gaps must
	// equal recomputing ranks directly.
	st, _ := m.NewStorage(1)
	addr := sq.StartAddr
	for t2 := int64(0); t2 < 2*int64(len(sq.JS)); t2++ {
		j := sq.Position(t2)
		i := 5 + j*7
		if m.Owner(i) != 1 {
			t.Fatalf("position %d (j=%d, i=%d) not owned", t2, j, i)
		}
		if got := st.Rank(i); got != addr {
			t.Fatalf("position %d: walked addr %d, rank %d", t2, addr, got)
		}
		addr += sq.Gaps[t2%int64(len(sq.Gaps))]
	}
}

func TestAccessEmptyProcessor(t *testing.T) {
	// Alignment A=2 (even template cells only), layout cyclic(1) over 2:
	// cells 2i mod 2 = 0 -> processor 0 owns everything.
	layout := dist.MustNew(2, 1)
	m := mustMap(t, layout, Alignment{A: 2, B: 0})
	sq, err := m.Access(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sq.Empty() {
		t.Errorf("processor 1 should own nothing, got %+v", sq)
	}
	addrs, err := m.Addresses(1, 0, 100, 1)
	if err != nil || addrs != nil {
		t.Errorf("Addresses should be empty: %v, %v", addrs, err)
	}
	// Degenerate bounds.
	if addrs, _ := m.Addresses(0, 10, 5, 1); addrs != nil {
		t.Error("u < l with s > 0 should be empty")
	}
	if _, err := m.Access(0, 0, 0); err == nil {
		t.Error("zero stride should error")
	}
	if _, err := m.NewStorage(7); err == nil {
		t.Error("out-of-range processor should error")
	}
}

func TestNegativeStrideOrder(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := mustMap(t, layout, Identity)
	// Descending section 100:4:-9 on processor 1: traversal order is
	// decreasing global index, so storage addresses must descend too.
	got, err := m.Addresses(1, 100, 4, -9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected owned elements")
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Errorf("descending traversal produced non-descending addresses: %v", got)
			break
		}
	}
}
