package align

import (
	"testing"

	"repro/internal/dist"
)

// BenchmarkAccess measures the two-application composition for an aligned
// section's gap table.
func BenchmarkAccess(b *testing.B) {
	m, err := NewMap(dist.MustNew(32, 64), Alignment{A: 3, B: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Access(5, 11, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRank measures one packed-storage rank query.
func BenchmarkRank(b *testing.B) {
	m, _ := NewMap(dist.MustNew(32, 64), Alignment{A: 3, B: 7})
	st, err := m.NewStorage(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Rank(int64(i) * 31)
	}
}
