// Package align handles HPF affine alignments between arrays and
// distributed templates.
//
// HPF aligns array element i to template cell a·i + b for arbitrary a ≠ 0
// and b (paper, Section 2). The template is what gets distributed, so the
// owner of A(i) is the owner of cell a·i + b, and a processor's packed
// local storage holds its owned array elements in increasing array-index
// order.
//
// Address generation for a section of an aligned array is solved "by two
// applications of the access sequence computation algorithm for the
// identity alignment" (Section 2): one application with stride a·s
// enumerates the section positions owned by each processor, and one with
// stride a ranks the touched elements within the processor's packed
// storage. Map composes the two.
package align

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/intmath"
)

// Alignment is the affine map i ↦ A·i + B from array index space to
// template cell space. A must be nonzero; A = 1, B = 0 is the identity
// alignment.
type Alignment struct {
	A, B int64
}

// Identity is the identity alignment.
var Identity = Alignment{A: 1, B: 0}

// Cell returns the template cell of array element i.
func (al Alignment) Cell(i int64) int64 { return al.A*i + al.B }

// String implements fmt.Stringer.
func (al Alignment) String() string {
	return fmt.Sprintf("i ↦ %d·i%+d", al.A, al.B)
}

// Map binds an alignment to a distributed template layout.
type Map struct {
	Layout dist.Layout
	Align  Alignment
}

// NewMap validates and builds an alignment map.
func NewMap(layout dist.Layout, al Alignment) (*Map, error) {
	if al.A == 0 {
		return nil, fmt.Errorf("align: alignment stride a = 0")
	}
	if _, err := intmath.MulChecked(intmath.Abs(al.A)+intmath.Abs(al.B)+1,
		layout.RowLen()); err != nil {
		return nil, fmt.Errorf("align: alignment too large for layout: %v", err)
	}
	return &Map{Layout: layout, Align: al}, nil
}

// Owner returns the processor owning array element i.
func (m *Map) Owner(i int64) int64 {
	return m.Layout.Owner(m.Align.Cell(i))
}

// Storage provides O(log k) rank queries into a processor's packed local
// storage for an aligned array. Build one per (map, processor) with
// NewStorage and reuse it across queries.
//
// Owned array indices form a periodic set: period pk/gcd(|a|, pk) in
// array-index space with at most k owned residues per period (the
// "second application" of the identity algorithm, with stride a).
type Storage struct {
	m        *Map
	proc     int64
	period   int64
	residues []int64 // sorted owned residues mod period
}

// NewStorage precomputes the owned-index cycle for the processor.
func (m *Map) NewStorage(proc int64) (*Storage, error) {
	if proc < 0 || proc >= m.Layout.P() {
		return nil, fmt.Errorf("align: processor %d outside [0, %d)", proc, m.Layout.P())
	}
	pk := m.Layout.RowLen()
	k := m.Layout.K()
	d := intmath.GCD(m.Align.A, pk)
	period := pk / d
	lo, hi := proc*k, (proc+1)*k
	var residues []int64
	// Owned residues r in [0, period) satisfy (A·r + B) mod pk in [lo, hi):
	// solve A·r ≡ c − B (mod pk) for each cell offset c in the block.
	for c := lo; c < hi; c++ {
		if r, ok := intmath.SolveCongruence(m.Align.A, c-m.Align.B, pk); ok {
			residues = append(residues, r)
		}
	}
	sort.Slice(residues, func(i, j int) bool { return residues[i] < residues[j] })
	return &Storage{m: m, proc: proc, period: period, residues: residues}, nil
}

// PerCycle returns the number of owned array elements per period.
func (s *Storage) PerCycle() int64 { return int64(len(s.residues)) }

// Period returns the owned-index period in array-index space.
func (s *Storage) Period() int64 { return s.period }

// Rank returns the number of owned array indices in [0, i) — the packed
// local storage address of element i when i itself is owned and i ≥ 0.
func (s *Storage) Rank(i int64) int64 {
	if len(s.residues) == 0 {
		return 0
	}
	q := intmath.FloorDiv(i, s.period)
	r := intmath.FloorMod(i, s.period)
	below := sort.Search(len(s.residues), func(t int) bool {
		return s.residues[t] >= r
	})
	return q*int64(len(s.residues)) + int64(below)
}

// Owns reports whether the processor owns array element i.
func (s *Storage) Owns(i int64) bool {
	return s.m.Owner(i) == s.proc
}

// LocalCount returns the number of array elements in [0, n) owned by the
// processor — its packed storage size for an n-element array.
func (s *Storage) LocalCount(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return s.Rank(n)
}

// Sequence is the access pattern of a (possibly unbounded) section of an
// aligned array on one processor. The owned section positions j (with
// element index l + j·s) repeat with period PeriodJ: position number t is
//
//	JS[t mod len(JS)] + (t div len(JS))·PeriodJ,
//
// and the packed-storage gap from owned position t to t+1 is
// Gaps[t mod len(Gaps)].
type Sequence struct {
	JS        []int64 // sorted owned section positions within one period
	PeriodJ   int64   // section positions per access cycle
	StartAddr int64   // packed-storage address of the first owned element
	Gaps      []int64 // cyclic storage gaps, len(Gaps) == len(JS)
}

// Empty reports whether the processor owns no section elements.
func (sq Sequence) Empty() bool { return len(sq.JS) == 0 }

// Position returns the section position of the t-th owned element.
func (sq Sequence) Position(t int64) int64 {
	n := int64(len(sq.JS))
	return sq.JS[t%n] + (t/n)*sq.PeriodJ
}

// Access computes the access sequence for the section l:·:s (s ≠ 0; the
// upper bound does not affect the cyclic pattern — see Addresses). This is
// the composition of the two identity-alignment applications described in
// the package comment.
func (m *Map) Access(proc, l, s int64) (Sequence, error) {
	if s == 0 {
		return Sequence{}, fmt.Errorf("align: zero section stride")
	}
	st, err := m.NewStorage(proc)
	if err != nil {
		return Sequence{}, err
	}
	pk := m.Layout.RowLen()
	k := m.Layout.K()
	// First application: template cells c_j = A·(l + j·s) + B = c0 + j·s1.
	c0 := m.Align.Cell(l)
	s1 := m.Align.A * s
	d1 := intmath.GCD(s1, pk)
	period1 := pk / d1
	lo, hi := proc*k, (proc+1)*k
	var js []int64
	for c := lo; c < hi; c++ {
		if j, ok := intmath.SolveCongruence(s1, c-c0, pk); ok {
			js = append(js, j)
		}
	}
	if len(js) == 0 {
		return Sequence{PeriodJ: period1}, nil
	}
	sort.Slice(js, func(a, b int) bool { return js[a] < js[b] })
	// Second application: rank each accessed element in packed storage.
	addr := func(j int64) int64 { return st.Rank(l + j*s) }
	gaps := make([]int64, len(js))
	for t := 0; t+1 < len(js); t++ {
		gaps[t] = addr(js[t+1]) - addr(js[t])
	}
	gaps[len(js)-1] = addr(js[0]+period1) - addr(js[len(js)-1])
	return Sequence{
		JS:        js,
		PeriodJ:   period1,
		StartAddr: addr(js[0]),
		Gaps:      gaps,
	}, nil
}

// Addresses returns the packed-storage addresses of every owned element of
// the bounded section l:u:s (inclusive upper bound; s > 0 ascends, s < 0
// descends), in section-traversal order.
func (m *Map) Addresses(proc, l, u, s int64) ([]int64, error) {
	sq, err := m.Access(proc, l, s)
	if err != nil {
		return nil, err
	}
	if sq.Empty() {
		return nil, nil
	}
	var n int64 // section length in positions
	switch {
	case s > 0 && u >= l:
		n = (u-l)/s + 1
	case s < 0 && u <= l:
		n = (l-u)/(-s) + 1
	default:
		return nil, nil
	}
	var out []int64
	addr := sq.StartAddr
	for t := int64(0); ; t++ {
		j := sq.Position(t)
		if j >= n {
			break
		}
		out = append(out, addr)
		addr += sq.Gaps[t%int64(len(sq.Gaps))]
	}
	return out, nil
}
