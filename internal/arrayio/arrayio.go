// Package arrayio serializes distributed arrays for checkpoint/restore
// and out-of-band exchange. The format preserves the distribution, so a
// restored array has identical layout and per-processor local memories —
// a restart does not redistribute.
//
// Format (little-endian):
//
//	magic   [8]byte  "HPFARR\x00\x01"
//	n       int64    global length
//	p, k    int64    distribution parameters
//	data    n×float64, per processor in rank order, each processor's
//	        packed local memory in local-address order
package arrayio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/hpf"
)

// maxProcs bounds the processor count a file may declare; it guards the
// reader against corrupt headers demanding absurd allocations.
const maxProcs = 1 << 20

var magic = [8]byte{'H', 'P', 'F', 'A', 'R', 'R', 0, 1}

// Write serializes the array to w.
func Write(w io.Writer, a *hpf.Array) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := []int64{a.N(), a.Layout().P(), a.Layout().K()}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for m := int64(0); m < a.Layout().P(); m++ {
		if err := binary.Write(bw, binary.LittleEndian, a.LocalMem(m)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes an array from r, reconstructing its layout and local
// memories.
func Read(r io.Reader) (*hpf.Array, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("arrayio: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("arrayio: bad magic %q", got[:])
	}
	var n, p, k int64
	for _, dst := range []*int64{&n, &p, &k} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("arrayio: reading header: %w", err)
		}
	}
	layout, err := dist.New(p, k)
	if err != nil {
		return nil, fmt.Errorf("arrayio: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("arrayio: negative array length %d", n)
	}
	if p > maxProcs {
		return nil, fmt.Errorf("arrayio: processor count %d exceeds format limit %d", p, maxProcs)
	}
	// Read the payload BEFORE allocating the (possibly huge) array, in
	// bounded chunks, so a corrupt header claiming petabytes fails as soon
	// as the stream runs dry instead of attempting the allocation.
	locals := make([][]float64, p)
	for m := int64(0); m < p; m++ {
		data, err := readFloats(br, layout.LocalCount(m, n))
		if err != nil {
			return nil, fmt.Errorf("arrayio: reading processor %d data: %w", m, err)
		}
		locals[m] = data
	}
	a, err := hpf.NewArray(layout, n)
	if err != nil {
		return nil, fmt.Errorf("arrayio: %w", err)
	}
	for m := int64(0); m < p; m++ {
		copy(a.LocalMem(m), locals[m])
	}
	return a, nil
}

// readFloats reads count float64s in bounded chunks, growing the result
// only as data actually arrives.
func readFloats(r io.Reader, count int64) ([]float64, error) {
	const chunk = 8192
	out := make([]float64, 0, min(count, chunk))
	for int64(len(out)) < count {
		want := min(count-int64(len(out)), chunk)
		buf := make([]float64, want)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}
