package arrayio

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	for trial := 0; trial < 50; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(9) + 1
		n := r.Int63n(500)
		a := hpf.MustNewArray(dist.MustNew(p, k), n)
		for i := int64(0); i < n; i++ {
			a.Set(i, r.NormFloat64())
		}
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			t.Fatal(err)
		}
		b, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if b.N() != n || b.Layout() != a.Layout() {
			t.Fatalf("metadata changed: n=%d layout=%v", b.N(), b.Layout())
		}
		if !reflect.DeepEqual(a.Gather(), b.Gather()) {
			t.Fatal("contents changed")
		}
		// Local memories must match exactly (no redistribution happened).
		for m := int64(0); m < p; m++ {
			if !reflect.DeepEqual(a.LocalMem(m), b.LocalMem(m)) {
				t.Fatalf("proc %d local memory changed", m)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC11111111"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated after magic.
	if _, err := Read(bytes.NewReader(magic[:])); err == nil {
		t.Error("truncated header should fail")
	}
	// Valid header but truncated data.
	a := hpf.MustNewArray(dist.MustNew(2, 3), 50)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated data should fail")
	}
	// Corrupt header: negative p.
	bad := append([]byte(nil), buf.Bytes()...)
	// p is the second int64 after magic: offset 8+8.
	for i := 0; i < 8; i++ {
		bad[16+i] = 0xff
	}
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt layout should fail")
	}
}

func TestWriteToFailingWriter(t *testing.T) {
	a := hpf.MustNewArray(dist.MustNew(2, 2), 100)
	if err := Write(failWriter{}, a); err == nil {
		t.Error("failing writer should propagate the error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// FuzzRead feeds arbitrary bytes to the deserializer: corrupt input must
// produce errors, never panics or absurd allocations.
func FuzzRead(f *testing.F) {
	a := hpf.MustNewArray(dist.MustNew(2, 3), 30)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(magic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked on %d bytes: %v", len(data), r)
			}
		}()
		arr, err := Read(bytes.NewReader(data))
		if err == nil && arr == nil {
			t.Fatal("nil array with nil error")
		}
	})
}
