package codegen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The C emitter and the Go kernels must stay two views of the same
// address sequence. This file pins the emitted C for fixture problems as
// golden files, then interprets the emitted constants (tables, start
// offset) with the C fragments' control flow and checks that the element
// set and count agree with both the specialized kernels and the ground
// truth enumeration — so a kernel change that drifts from the emitted
// node code fails here, not in a downstream C build.

type parityCase struct {
	name string
	pr   core.Problem
	u    int64
}

func parityCases() []parityCase {
	return []parityCase{
		{"paper_p4k8s9", core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}, 320},
		{"fig1_p4k8s9m0", core.Problem{P: 4, K: 8, L: 0, S: 9, M: 0}, 319},
		{"table2_p32k4s7", core.Problem{P: 32, K: 4, L: 0, S: 7, M: 5}, 5000},
		{"dense_p4k16s5", core.Problem{P: 4, K: 16, L: 0, S: 5, M: 1}, 2000},
		{"sparse_p4k16s23", core.Problem{P: 4, K: 16, L: 5, S: 23, M: 2}, 2000},
	}
}

var (
	reTable = regexp.MustCompile(`static const long (deltaM|nextoffset)\[\d+\] = \{([^}]*)\};`)
	reStart = regexp.MustCompile(`long i = (\d+); /\* startoffset \*/`)
)

// parseEmitted extracts the compiled-in tables and start offset from an
// emitted C fragment.
func parseEmitted(t *testing.T, code string) (delta, next []int64, startOff int64) {
	t.Helper()
	startOff = -1
	for _, m := range reTable.FindAllStringSubmatch(code, -1) {
		var vals []int64
		for _, part := range strings.Split(m[2], ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				t.Fatalf("bad table literal %q: %v", part, err)
			}
			vals = append(vals, v)
		}
		switch m[1] {
		case "deltaM":
			delta = vals
		case "nextoffset":
			next = vals
		}
	}
	if m := reStart.FindStringSubmatch(code); m != nil {
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatalf("bad startoffset %q: %v", m[1], err)
		}
		startOff = v
	}
	return delta, next, startOff
}

// simulateEmitted executes the control flow of the emitted fragment on
// its parsed constants, returning the local addresses written.
func simulateEmitted(shape EmitShape, start, last int64, delta, next []int64, startOff int64) []int64 {
	var out []int64
	if start < 0 {
		return out
	}
	base := start
	if shape == EmitD {
		i := startOff
		for base <= last {
			out = append(out, base)
			base += delta[i]
			i = next[i]
		}
		return out
	}
	// Shapes A/B/C all advance cyclically through deltaM.
	i := 0
	for base <= last {
		out = append(out, base)
		base += delta[i]
		i++
		if i == len(delta) {
			i = 0
		}
	}
	return out
}

func TestEmitCParityWithKernels(t *testing.T) {
	for _, tc := range parityCases() {
		f := newFixture(t, tc.pr, tc.u)
		sp := kernelSpec(t, f)
		for _, shape := range []EmitShape{EmitB, EmitD} {
			code, err := EmitCCode(shape, tc.pr, "1.0")
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, shape, err)
			}

			golden := filepath.Join("testdata", fmt.Sprintf("parity_%s_%s.c", tc.name, goldenShape(shape)))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(code), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			wantCode, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if string(wantCode) != code {
				t.Errorf("%s/%v: emitted C drifted from golden (re-run with -update if intentional)",
					tc.name, shape)
			}

			// Interpret the emitted constants and compare the element walk
			// against every kernel the spec admits and the ground truth.
			delta, next, startOff := parseEmitted(t, code)
			addrs := simulateEmitted(shape, f.start, f.last, delta, next, startOff)
			if len(addrs) != len(f.wantAddrs) {
				t.Fatalf("%s/%v: emitted C writes %d elements, ground truth %d",
					tc.name, shape, len(addrs), len(f.wantAddrs))
			}
			for i := range addrs {
				if addrs[i] != f.wantAddrs[i] {
					t.Fatalf("%s/%v: emitted C diverges at %d: %d != %d",
						tc.name, shape, i, addrs[i], f.wantAddrs[i])
				}
			}
			for _, kn := range Candidates(sp) {
				kn := kn
				if got := kn.Fill(f.mem, 1); got != int64(len(addrs)) {
					t.Errorf("%s/%v: kernel %v writes %d elements, emitted C %d",
						tc.name, shape, kn.Kind(), got, len(addrs))
				}
				clear(f.mem)
			}
		}
	}
}

// goldenShape names an EmitShape without the parenthesis characters so
// it can appear in a file name.
func goldenShape(s EmitShape) string {
	switch s {
	case EmitA:
		return "8a"
	case EmitB:
		return "8b"
	case EmitC_:
		return "8c"
	case EmitD:
		return "8d"
	}
	return "unknown"
}
