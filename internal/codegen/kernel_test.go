package codegen

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
)

// kernelSpec assembles the plan-compile-time Spec for a fixture,
// including the shared transition tables when the configuration has
// them.
func kernelSpec(t *testing.T, f *fixture) Spec {
	t.Helper()
	sp := Spec{
		Problem: f.pr,
		Start:   f.start,
		Last:    f.last,
		Count:   int64(len(f.wantAddrs)),
		Gaps:    f.gaps,
	}
	ts, err := core.NewTableSet(f.pr.P, f.pr.K, f.pr.L, f.pr.S)
	if err != nil {
		t.Fatal(err)
	}
	if delta, next, ok := ts.Transitions(); ok {
		sp.Delta, sp.Next = delta, next
	}
	return sp
}

// kernelProblems extends testProblems with cases that exercise every
// specialized family.
func kernelProblems() []struct {
	pr core.Problem
	u  int64
} {
	out := testProblems()
	add := func(p, k, l, s, m, u int64) {
		out = append(out, struct {
			pr core.Problem
			u  int64
		}{core.Problem{P: p, K: k, L: l, S: s, M: m}, u})
	}
	add(4, 1, 0, 3, 2, 4000)    // cyclic(1): k = 1 → const gap
	add(4, 100, 0, 3, 1, 399)   // block-like: whole range in row 0 → const gap s
	add(4, 16, 0, 3, 1, 9000)   // s ≤ k but pk−k ≡ 0 (mod s): uniform → const gap
	add(4, 16, 0, 5, 1, 9000)   // s ≤ k, period 16, non-uniform → row stride
	add(4, 16, 5, 23, 2, 9000)  // s > k, period 16 → generic (dispatch needs a table-only spec)
	add(4, 16, 0, 24, 3, 9000)  // s > k, gcd(24,64)=8 → short cycles
	add(3, 5, 2, 4, 1, 777)     // period ≤ 8 → unrolled
	add(8, 8, 1, 13, 6, 100000) // unrolled, long run
	return out
}

func TestKernelSelection(t *testing.T) {
	cases := []struct {
		p, k, l, s, m, u int64
		want             KernelKind
	}{
		{2, 3, 0, 1, 1, 50, KindConstGap},     // unit stride: uniform gaps
		{4, 1, 0, 3, 2, 4000, KindConstGap},   // cyclic(1)
		{4, 100, 0, 3, 1, 399, KindConstGap},  // block row 0 only
		{4, 8, 4, 9, 1, 320, KindUnrolled},    // paper example, period 8
		{3, 5, 2, 4, 1, 777, KindUnrolled},    // period ≤ 8
		{4, 16, 0, 3, 1, 9000, KindConstGap},  // s ≤ k but the boundary gap is s too
		{4, 16, 0, 5, 1, 9000, KindRowStride}, // s ≤ k, period 16, non-uniform
		{4, 16, 5, 23, 2, 9000, KindGeneric},  // s > k with a gap list: scan beats dispatch
		{4, 2, 3, 8, 0, 100, KindNone},        // empty processor
	}
	for _, tc := range cases {
		pr := core.Problem{P: tc.p, K: tc.k, L: tc.l, S: tc.s, M: tc.m}
		f := newFixture(t, pr, tc.u)
		sp := kernelSpec(t, f)
		kn := Select(sp)
		if kn.Kind() != tc.want {
			t.Errorf("%+v u=%d: selected %v, want %v", pr, tc.u, kn.Kind(), tc.want)
		}
		// Selection is a pure function of the spec.
		if again := Select(sp); again.Kind() != kn.Kind() {
			t.Errorf("%+v: selection not deterministic: %v then %v", pr, kn.Kind(), again.Kind())
		}
		if compiled := Compile(sp); compiled.Kind() != kn.Kind() {
			t.Errorf("%+v: Compile picked %v, Select picked %v", pr, compiled.Kind(), kn.Kind())
		}
	}

	// A table-only spec (no materialized gap list) is where the 8(d)
	// dispatch kernel earns its keep: O(k) shared tables, zero per-plan
	// storage.
	pr := core.Problem{P: 4, K: 16, L: 5, S: 23, M: 2}
	f := newFixture(t, pr, 9000)
	sp := kernelSpec(t, f)
	sp.Gaps = nil
	if kn := Select(sp); kn.Kind() != KindOffsetDispatch {
		t.Errorf("table-only spec selected %v, want offsetdispatch", kn.Kind())
	}
}

func TestKernelOpsMatchGroundTruth(t *testing.T) {
	for _, tc := range kernelProblems() {
		f := newFixture(t, tc.pr, tc.u)
		sp := kernelSpec(t, f)
		n := int64(len(f.wantAddrs))
		for _, kn := range Candidates(sp) {
			kn := kn
			label := kn.Kind().String()
			if kn.Count() != n {
				t.Errorf("%+v u=%d %s: Count() = %d, want %d", tc.pr, tc.u, label, kn.Count(), n)
			}

			// Fill writes exactly the owned element set.
			f.verify(t, label+"/fill", kn.Fill(f.mem, 1.0))

			// Map applies in place over the same set.
			f.verify(t, label+"/map", kn.Map(f.mem, func(x float64) float64 { return x + 1 }))

			// Sum sees every owned element exactly once.
			var want float64
			for i, a := range f.wantAddrs {
				f.mem[a] = float64(i + 1)
				want += float64(i + 1)
			}
			got, cnt := kn.Sum(f.mem)
			if cnt != n || math.Abs(got-want) > 1e-9 {
				t.Errorf("%+v u=%d %s: Sum = (%v, %d), want (%v, %d)", tc.pr, tc.u, label, got, cnt, want, n)
			}

			// Gather preserves access order; Scatter round-trips.
			buf := make([]float64, n)
			if got := kn.Gather(f.mem, buf); got != n {
				t.Errorf("%s: Gather count = %d, want %d", label, got, n)
			}
			for i := range buf {
				if buf[i] != float64(i+1) {
					t.Errorf("%s: Gather order wrong at %d", label, i)
					break
				}
			}
			mem2 := make([]float64, len(f.mem))
			if got := kn.Scatter(mem2, buf); got != n {
				t.Errorf("%s: Scatter count = %d, want %d", label, got, n)
			}
			if !reflect.DeepEqual(mem2, f.mem) {
				t.Errorf("%s: Scatter(Gather(mem)) != mem", label)
			}
			clear(f.mem)
		}
	}
}

func TestKernelEmpty(t *testing.T) {
	mem := make([]float64, 8)
	kn := Select(Spec{Problem: core.Problem{P: 4, K: 2, L: 3, S: 8, M: 0}, Start: -1, Last: -1})
	if kn.Kind() != KindNone {
		t.Fatalf("empty spec selected %v", kn.Kind())
	}
	if n := kn.Fill(mem, 1); n != 0 {
		t.Errorf("Fill on empty = %d", n)
	}
	if n := kn.Map(mem, func(x float64) float64 { return x }); n != 0 {
		t.Errorf("Map on empty = %d", n)
	}
	if s, n := kn.Sum(mem); s != 0 || n != 0 {
		t.Errorf("Sum on empty = (%v, %d)", s, n)
	}
	if n := kn.Gather(mem, nil); n != 0 {
		t.Errorf("Gather on empty = %d", n)
	}
	if n := kn.Scatter(mem, nil); n != 0 {
		t.Errorf("Scatter on empty = %d", n)
	}
}

func TestKernelKindString(t *testing.T) {
	want := map[KernelKind]string{
		KindNone:           "none",
		KindConstGap:       "constgap",
		KindUnrolled:       "unrolled",
		KindRowStride:      "rowstride",
		KindOffsetDispatch: "offsetdispatch",
		KindGeneric:        "generic",
		numKernelKinds:     "invalid",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("KernelKind(%d).String() = %q, want %q", k, k.String(), w)
		}
	}
}

// TestKernelCalibration checks that the opt-in probe produces a kernel
// that is still correct (whichever contestant wins) and that the winner
// cache prevents re-probing.
func TestKernelCalibration(t *testing.T) {
	SetCalibration(true)
	defer SetCalibration(false)
	defer ResetCalibration()
	ResetCalibration()

	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	f := newFixture(t, pr, 320)
	sp := kernelSpec(t, f)
	kn := Compile(sp)
	if kn.Kind() != KindUnrolled && kn.Kind() != KindGeneric {
		t.Fatalf("calibrated compile picked %v", kn.Kind())
	}
	f.verify(t, "calibrated/fill", kn.Fill(f.mem, 1.0))

	// Second compile of the same class must reuse the cached winner and
	// stay consistent with the first.
	if again := Compile(sp); again.Kind() != kn.Kind() {
		t.Errorf("calibration winner not cached: %v then %v", kn.Kind(), again.Kind())
	}
}
