package codegen

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// fixture builds everything a node-code shape needs for one problem and
// upper bound: the local memory, start/last local addresses, tables, and
// the reference address list.
type fixture struct {
	pr        core.Problem
	mem       []float64
	start     int64 // StartLocal, or -1
	last      int64 // local address of last owned element, or -1
	gaps      []int64
	offsetTab core.OffsetTable
	wantAddrs []int64
}

func newFixture(t *testing.T, pr core.Problem, u int64) *fixture {
	t.Helper()
	f := &fixture{pr: pr, start: -1, last: -1}
	addrs, err := pr.Addresses(u)
	if err != nil {
		t.Fatal(err)
	}
	f.wantAddrs = addrs
	seq, err := core.Lattice(pr)
	if err != nil {
		t.Fatal(err)
	}
	f.offsetTab, err = core.OffsetTables(pr)
	if err != nil {
		t.Fatal(err)
	}
	f.gaps = seq.Gaps
	if len(addrs) > 0 {
		f.start = addrs[0]
		f.last = addrs[len(addrs)-1]
	}
	memSize := int64(16)
	if len(addrs) > 0 {
		memSize = f.last + 2
	}
	f.mem = make([]float64, memSize)
	return f
}

func (f *fixture) verify(t *testing.T, label string, wrote int64) {
	t.Helper()
	if wrote != int64(len(f.wantAddrs)) {
		t.Errorf("%s: wrote %d elements, want %d", label, wrote, len(f.wantAddrs))
	}
	want := map[int64]bool{}
	for _, a := range f.wantAddrs {
		want[a] = true
	}
	for a, v := range f.mem {
		if want[int64(a)] && v != 1.0 {
			t.Errorf("%s: address %d not written", label, a)
		}
		if !want[int64(a)] && v != 0 {
			t.Errorf("%s: address %d written spuriously", label, a)
		}
	}
	clear(f.mem)
}

func testProblems() []struct {
	pr core.Problem
	u  int64
} {
	var out []struct {
		pr core.Problem
		u  int64
	}
	add := func(p, k, l, s, m, u int64) {
		out = append(out, struct {
			pr core.Problem
			u  int64
		}{core.Problem{P: p, K: k, L: l, S: s, M: m}, u})
	}
	add(4, 8, 4, 9, 1, 320)   // the paper's example
	add(4, 8, 0, 9, 0, 319)   // Figure 1
	add(32, 4, 0, 7, 5, 5000) // Table 2-ish
	add(4, 2, 3, 8, 1, 100)   // single-offset case
	add(4, 2, 3, 8, 0, 100)   // empty processor
	add(2, 3, 0, 1, 1, 50)    // unit stride
	add(1, 4, 0, 5, 0, 200)   // single processor
	add(4, 8, 4, 9, 1, 4)     // single element (start == last)
	add(4, 8, 4, 9, 1, 3)     // upper bound below lower: empty range
	return out
}

func TestShapesAgree(t *testing.T) {
	for _, tc := range testProblems() {
		f := newFixture(t, tc.pr, tc.u)

		f.verify(t, "ShapeA", ShapeA(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeB", ShapeB(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeC", ShapeC(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeD", ShapeD(f.mem, f.start, f.last, f.offsetTab, 1.0))

		w, ok, err := core.NewWalker(tc.pr)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			f.verify(t, "ShapeWalker", ShapeWalker(f.mem, f.last, w, 1.0))
		} else if len(f.wantAddrs) != 0 {
			t.Errorf("%+v: walker missing but elements exist", tc.pr)
		}
	}
}

func TestShapesAgreeRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 400; trial++ {
		p := r.Int63n(8) + 1
		k := r.Int63n(12) + 1
		s := r.Int63n(3*p*k) + 1
		l := r.Int63n(p * k)
		u := l + r.Int63n(8*s*k+1)
		m := r.Int63n(p)
		pr := core.Problem{P: p, K: k, L: l, S: s, M: m}
		f := newFixture(t, pr, u)

		f.verify(t, "ShapeA", ShapeA(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeB", ShapeB(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeC", ShapeC(f.mem, f.start, f.last, f.gaps, 1.0))
		f.verify(t, "ShapeD", ShapeD(f.mem, f.start, f.last, f.offsetTab, 1.0))
		if w, ok, _ := core.NewWalker(pr); ok {
			f.verify(t, "ShapeWalker", ShapeWalker(f.mem, f.last, w, 1.0))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	u := int64(500)
	f := newFixture(t, pr, u)
	n := int64(len(f.wantAddrs))

	// Fill owned cells with distinct values.
	for i, a := range f.wantAddrs {
		f.mem[a] = float64(i + 1)
	}
	buf := make([]float64, n)
	if got := Gather(f.mem, f.start, f.last, f.gaps, buf); got != n {
		t.Fatalf("Gather count = %d, want %d", got, n)
	}
	for i := range buf {
		if buf[i] != float64(i+1) {
			t.Fatalf("Gather order wrong at %d: %v", i, buf)
		}
	}
	// Scatter into a fresh memory and compare.
	mem2 := make([]float64, len(f.mem))
	if got := Scatter(mem2, f.start, f.last, f.gaps, buf); got != n {
		t.Fatalf("Scatter count = %d, want %d", got, n)
	}
	if !reflect.DeepEqual(mem2, f.mem) {
		t.Error("Scatter(Gather(mem)) != mem")
	}
}

func TestEmptyInputs(t *testing.T) {
	mem := make([]float64, 8)
	if n := ShapeA(mem, -1, -1, nil, 1.0); n != 0 {
		t.Errorf("ShapeA on empty = %d", n)
	}
	if n := ShapeB(mem, -1, -1, nil, 1.0); n != 0 {
		t.Errorf("ShapeB on empty = %d", n)
	}
	if n := ShapeC(mem, -1, -1, nil, 1.0); n != 0 {
		t.Errorf("ShapeC on empty = %d", n)
	}
	if n := ShapeD(mem, -1, -1, core.OffsetTable{Start: -1}, 1.0); n != 0 {
		t.Errorf("ShapeD on empty = %d", n)
	}
	if n := Gather(mem, 5, 4, []int64{1}, nil); n != 0 {
		t.Errorf("Gather past-last = %d", n)
	}
	if n := Scatter(mem, 5, 4, []int64{1}, nil); n != 0 {
		t.Errorf("Scatter past-last = %d", n)
	}
}
