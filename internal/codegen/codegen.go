// Package codegen provides the node-code loop shapes of the paper's
// Figure 8: five interchangeable ways for a processor to stream through
// the local elements of a regular section using a memory-gap table (or,
// for the table-free variant, the basis vectors alone).
//
// Each shape executes the node part of the array assignment
// A(l:u:s) = value, writing value at every owned local address from the
// start address through the last address. The shapes differ only in how
// they cycle through the gap table — which is exactly the difference the
// paper measures in Table 2:
//
//	ShapeA — index advances with an explicit mod (Figure 8(a));
//	ShapeB — mod replaced by a test-and-reset (Figure 8(b));
//	ShapeC — doubly nested loop, inner for over the table (Figure 8(c));
//	ShapeD — offset-indexed tables chained by NextOffset (Figure 8(d));
//	ShapeWalker — no tables: regenerates gaps from R and L (Section 6.2).
//
// All shapes return the number of elements written so callers can verify
// coverage.
package codegen

import "repro/internal/core"

// ShapeA is Figure 8(a): the gap-table index wraps with a mod operation
// every iteration. The paper includes it "for conceptual reasons" — the
// mod makes it far slower than the alternatives (Table 2).
func ShapeA(mem []float64, start, last int64, deltaM []int64, value float64) int64 {
	if start < 0 || start > last {
		return 0
	}
	length := int64(len(deltaM))
	base := start
	i := int64(0)
	var n int64
	for base <= last {
		mem[base] = value
		base += deltaM[i]
		i = (i + 1) % length
		n++
	}
	return n
}

// ShapeB is Figure 8(b): the mod is replaced by a post-increment and a
// reset test. This is the shape Chatterjee et al.'s implementation
// actually used.
func ShapeB(mem []float64, start, last int64, deltaM []int64, value float64) int64 {
	if start < 0 || start > last {
		return 0
	}
	length := int64(len(deltaM))
	base := start
	i := int64(0)
	var n int64
	for base <= last {
		mem[base] = value
		base += deltaM[i]
		i++
		if i == length {
			i = 0
		}
		n++
	}
	return n
}

// ShapeC is Figure 8(c): an infinite outer loop around a for over the
// table, exiting from the middle. The regular inner loop gives the
// compiler a better scheduling window (Section 6.2).
func ShapeC(mem []float64, start, last int64, deltaM []int64, value float64) int64 {
	if start < 0 || start > last {
		return 0
	}
	base := start
	var n int64
	for {
		for i := 0; i < len(deltaM); i++ {
			mem[base] = value
			n++
			base += deltaM[i]
			if base > last {
				return n
			}
		}
	}
}

// ShapeD is Figure 8(d): deltaM is indexed by the element's local block
// offset and a second table chains offsets together. Two lookups per
// element, but the simplest control flow — the fastest shape in Table 2.
func ShapeD(mem []float64, start, last int64, tab core.OffsetTable, value float64) int64 {
	if start < 0 || start > last || tab.Start < 0 {
		return 0
	}
	base := start
	i := tab.Start
	var n int64
	for base <= last {
		mem[base] = value
		base += tab.Delta[i]
		i = tab.NextOffset[i]
		n++
	}
	return n
}

// ShapeWalker is the table-free variant of Section 6.2 (reference [12]):
// gaps are regenerated on the fly from the R/L basis tests, trading a
// small time penalty for zero table storage.
func ShapeWalker(mem []float64, last int64, w *core.Walker, value float64) int64 {
	base := w.StartLocal()
	if base < 0 || base > last {
		return 0
	}
	var n int64
	for base <= last {
		mem[base] = value
		base += w.Next()
		n++
	}
	return n
}

// Gather is the read-side counterpart of the shapes: it copies the owned
// section elements from local memory into a dense buffer in access order,
// using the ShapeB control flow. It returns the number of elements
// gathered. Communication code uses this to pack messages.
func Gather(mem []float64, start, last int64, deltaM []int64, out []float64) int64 {
	if start < 0 || start > last {
		return 0
	}
	length := int64(len(deltaM))
	base := start
	i := int64(0)
	var n int64
	for base <= last {
		out[n] = mem[base]
		base += deltaM[i]
		i++
		if i == length {
			i = 0
		}
		n++
	}
	return n
}

// Scatter is the inverse of Gather: it writes a dense buffer into the
// owned section elements in access order. It returns the number of
// elements scattered.
func Scatter(mem []float64, start, last int64, deltaM []int64, in []float64) int64 {
	if start < 0 || start > last {
		return 0
	}
	length := int64(len(deltaM))
	base := start
	i := int64(0)
	var n int64
	for base <= last {
		mem[base] = in[n]
		base += deltaM[i]
		i++
		if i == length {
			i = 0
		}
		n++
	}
	return n
}
