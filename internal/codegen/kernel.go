package codegen

// Kernel specialization: instead of interpreting one generic loop shape
// (ShapeB) for every workload, the runtime compiles each cached section
// plan into the most specific node-code kernel its parameters admit —
// the Section 6.1 "compile-time constants" observation pushed one level
// further. The specialized kinds go beyond the paper's Figure 8 menu:
//
//	KindConstGap   — table-free constant-stride loop. Covers every
//	                 uniform-gap table: cyclic(1) distributions (k = 1),
//	                 unit-stride sections (all gaps 1), degenerate
//	                 length-1 tables, and block distributions whose
//	                 traversal stays inside one block row (gap ≡ s).
//	KindUnrolled   — small-period tables (period ≤ MaxUnrollPeriod): the
//	                 gap sequence is folded into cumulative offsets held
//	                 in registers and the loop is unrolled by the period,
//	                 so one trip-count test covers a whole period.
//	KindRowStride  — table-free row decomposition for s ≤ k: within one
//	                 block row the owned section elements are a constant-
//	                 stride run (consecutive globals in a block differ by
//	                 exactly s), and the first touched offset advances by
//	                 (-pk) mod s per row, so the kernel needs no tables at
//	                 all. This is the fast path for the gcd(s,pk)=1
//	                 family, whose period-k tables defeat unrolling.
//	KindOffsetDispatch — the Figure 8(d) NextOffset-driven shape, running
//	                 on the processor-independent transition tables shared
//	                 through core.TableSet. Selected only for table-only
//	                 specs (no materialized gap list): it needs zero
//	                 per-plan storage, but its dependent next[] load chain
//	                 loses to the sequential gap scan whenever a gap list
//	                 exists (the offset period never exceeds k).
//	KindGeneric    — the Figure 8(b) control flow, the paper's baseline
//	                 and the fallback when nothing more specific applies.
//
// Every kind comes in fill/map/sum/gather/scatter op variants so the
// section runtime (internal/hpf) executes through one dispatch instead
// of hand-rolling per-op copies of the ShapeB walk. Selection happens
// once, at plan-compile time (Select/Compile), and the chosen Kernel is
// stored in the cached plan; steady-state traversal performs no
// allocation and no re-selection.

import (
	"repro/internal/core"
	"repro/internal/telemetry"
)

// KernelKind names one specialized node-code kernel family.
type KernelKind uint8

// The kernel families, from most to least specialized.
const (
	KindNone           KernelKind = iota // processor owns nothing
	KindConstGap                         // table-free, constant stride
	KindUnrolled                         // period ≤ MaxUnrollPeriod, unrolled
	KindRowStride                        // table-free row decomposition (s ≤ k)
	KindOffsetDispatch                   // Figure 8(d) via shared transition tables
	KindGeneric                          // Figure 8(b) baseline
	numKernelKinds
)

func (k KernelKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindConstGap:
		return "constgap"
	case KindUnrolled:
		return "unrolled"
	case KindRowStride:
		return "rowstride"
	case KindOffsetDispatch:
		return "offsetdispatch"
	case KindGeneric:
		return "generic"
	}
	return "invalid"
}

// MaxUnrollPeriod is the largest AM-table period the selector unrolls.
// Beyond 8 the cumulative offsets no longer fit the register budget and
// the per-period savings stop paying for the code growth.
const MaxUnrollPeriod = 8

// Per-kind selection and invocation counters. Selection is counted once
// per Compile, invocation once per op call; both record through atomic
// counters so the warm path stays allocation free.
var (
	telSelected [numKernelKinds]*telemetry.Counter
	telInvoked  [numKernelKinds]*telemetry.Counter
)

func init() {
	r := telemetry.Default()
	for k := KernelKind(0); k < numKernelKinds; k++ {
		telSelected[k] = r.Counter("codegen.kernel_selected." + k.String())
		telInvoked[k] = r.Counter("codegen.kernel_invocations." + k.String())
	}
}

// Spec is everything the selector may consult about one per-processor
// node-loop pattern, gathered at plan-compile time: the core problem,
// the local start/last addresses and element count of the bounded
// traversal, the AM gap table, and (optionally) the shared offset-
// indexed transition tables from core.TableSet.Transitions. Delta and
// Next may be nil; the offset-dispatch kernel is then unavailable.
type Spec struct {
	Problem core.Problem
	Start   int64 // local address of the first owned element, -1 if none
	Last    int64 // local address of the last owned element
	Count   int64 // number of owned elements in bounds
	Gaps    []int64
	Delta   []int64 // shared transition gaps, indexed by local offset
	Next    []int64 // shared successor offsets, indexed by local offset
}

// Kernel is a compiled node loop: one selected kind plus exactly the
// parameters that kind consumes. Kernels are immutable after Select and
// safe for concurrent use; slice fields alias the (read-only) tables of
// the spec they were compiled from.
type Kernel struct {
	kind  KernelKind
	start int64
	last  int64
	count int64

	gap  int64   // KindConstGap
	gaps []int64 // KindGeneric

	prefix []int64 // KindUnrolled: cumulative offsets, prefix[0] = 0
	cycle  int64   // KindUnrolled: local advance per full period

	blockK  int64 // KindRowStride: k (row length in local memory)
	stride  int64 // KindRowStride: s
	rowStep int64 // KindRowStride: (-pk) mod s

	delta    []int64 // KindOffsetDispatch
	next     []int64 // KindOffsetDispatch
	startOff int64   // KindOffsetDispatch: start mod k
}

// Kind returns the selected kernel family.
func (kn *Kernel) Kind() KernelKind { return kn.kind }

// Count returns the number of elements one traversal covers.
func (kn *Kernel) Count() int64 { return kn.count }

// uniformGap reports whether every table entry equals the first (an
// empty table is trivially uniform; its gap is never consumed).
func uniformGap(gaps []int64) (int64, bool) {
	if len(gaps) == 0 {
		return 0, true
	}
	g := gaps[0]
	for _, x := range gaps[1:] {
		if x != g {
			return 0, false
		}
	}
	return g, true
}

// Select chooses the most specialized kernel the spec admits. It is a
// pure function of the spec — selection for a given Problem and bounds
// is deterministic — and performs no timing; see Compile for the
// optionally calibrated entry point.
func Select(sp Spec) Kernel {
	kn := Kernel{start: sp.Start, last: sp.Last, count: sp.Count}
	if sp.Count <= 0 || sp.Start < 0 {
		kn.kind = KindNone
		kn.count = 0
		return kn
	}
	k, s := sp.Problem.K, sp.Problem.S
	// An empty gap table is only conclusive for a single-element
	// traversal; a table-only spec (Gaps nil, Count > 1) must fall
	// through to the offset-dispatch check below.
	if g, ok := uniformGap(sp.Gaps); ok && (len(sp.Gaps) > 0 || sp.Count == 1) {
		kn.kind, kn.gap = KindConstGap, g
		return kn
	}
	if sp.Last < k {
		// The whole traversal stays inside one block row (the block-
		// distribution case): consecutive owned section elements lie in
		// the same block, so every executed gap is exactly s even though
		// the full cyclic table is not uniform.
		kn.kind, kn.gap = KindConstGap, s
		return kn
	}
	if p := len(sp.Gaps); p > 1 && p <= MaxUnrollPeriod {
		kn.kind = KindUnrolled
		kn.prefix = make([]int64, p)
		var sum int64
		for i, g := range sp.Gaps {
			kn.prefix[i] = sum
			sum += g
		}
		kn.cycle = sum
		return kn
	}
	if s <= k {
		// Dense rows: at least one element per k/s ≥ 1 local cells, so the
		// per-row bookkeeping amortizes and no table is touched at all.
		kn.kind = KindRowStride
		kn.blockK = k
		kn.stride = s
		kn.rowStep = rowStepFor(sp.Problem)
		return kn
	}
	if sp.Gaps == nil && sp.Delta != nil && sp.Next != nil {
		// Table-only spec (no materialized per-processor gap list): the
		// Figure 8(d) dispatch runs straight off the O(k) shared transition
		// tables. When a gap list exists the sequential generic walk below
		// wins — the dependent next[] load chain costs more per element
		// than scanning a period ≤ k gap array — so offset dispatch is the
		// memory-frugal pick, never the preferred one.
		kn.kind = KindOffsetDispatch
		kn.delta, kn.next = sp.Delta, sp.Next
		kn.startOff = sp.Start % k
		return kn
	}
	kn.kind = KindGeneric
	kn.gaps = sp.Gaps
	return kn
}

// rowStepFor returns (-pk) mod s: how far the first touched offset of a
// block row moves between consecutive rows of the same processor.
func rowStepFor(pr core.Problem) int64 {
	pk := pr.P * pr.K
	return (pr.S - pk%pr.S) % pr.S
}

// Compile is the plan-compile-time entry point: Select, optionally
// refined by the one-shot calibration probe (SetCalibration), with the
// winning kind recorded in the selection counters. With calibration off
// (the default) Compile is deterministic for a given spec.
func Compile(sp Spec) Kernel {
	kn := Select(sp)
	if calibrationOn() {
		kn = calibrated(sp, kn)
	}
	telSelected[kn.kind].Inc()
	return kn
}

// genericKernel builds the KindGeneric fallback for a spec, used by the
// calibrator when the probe demotes a specialized pick.
func genericKernel(sp Spec) Kernel {
	return Kernel{
		kind:  KindGeneric,
		start: sp.Start,
		last:  sp.Last,
		count: sp.Count,
		gaps:  sp.Gaps,
	}
}

// Candidates returns every kernel that is valid for the spec (the
// selected one included), most specialized first. Differential tests
// and the fuzz target use it to cross-check that all kernels write the
// identical element set; it is not part of the hot path.
func Candidates(sp Spec) []Kernel {
	var out []Kernel
	sel := Select(sp)
	out = append(out, sel)
	if sel.kind == KindNone {
		return out
	}
	add := func(kn Kernel) {
		if kn.kind != sel.kind {
			out = append(out, kn)
		}
	}
	if g, ok := uniformGap(sp.Gaps); ok && (len(sp.Gaps) > 0 || sp.Count == 1) {
		add(Kernel{kind: KindConstGap, start: sp.Start, last: sp.Last, count: sp.Count, gap: g})
	}
	if p := len(sp.Gaps); p > 1 && p <= MaxUnrollPeriod {
		pre := make([]int64, p)
		var sum int64
		for i, g := range sp.Gaps {
			pre[i] = sum
			sum += g
		}
		add(Kernel{kind: KindUnrolled, start: sp.Start, last: sp.Last, count: sp.Count, prefix: pre, cycle: sum})
	}
	// RowStride is correct for every stride (rows without elements fall
	// through the inner loop); s ≤ k is only the performance heuristic.
	add(Kernel{
		kind: KindRowStride, start: sp.Start, last: sp.Last, count: sp.Count,
		blockK: sp.Problem.K, stride: sp.Problem.S, rowStep: rowStepFor(sp.Problem),
	})
	if sp.Delta != nil && sp.Next != nil {
		add(Kernel{
			kind: KindOffsetDispatch, start: sp.Start, last: sp.Last, count: sp.Count,
			delta: sp.Delta, next: sp.Next, startOff: sp.Start % sp.Problem.K,
		})
	}
	if sp.Gaps != nil {
		add(genericKernel(sp))
	}
	return out
}

// ---------------------------------------------------------------------
// Op dispatch. Each op returns the number of elements traversed so
// callers can verify coverage against the plan's count.

// Fill writes v at every traversed address: A(l:u:s) = v.
func (kn *Kernel) Fill(mem []float64, v float64) int64 {
	telInvoked[kn.kind].Inc()
	switch kn.kind {
	case KindConstGap:
		return kn.fillConst(mem, v)
	case KindUnrolled:
		return kn.fillUnrolled(mem, v)
	case KindRowStride:
		return kn.fillRow(mem, v)
	case KindOffsetDispatch:
		return kn.fillOffset(mem, v)
	case KindGeneric:
		return ShapeB(mem, kn.start, kn.last, kn.gaps, v)
	}
	return 0
}

// Map applies f in place at every traversed address, in access order.
func (kn *Kernel) Map(mem []float64, f func(float64) float64) int64 {
	telInvoked[kn.kind].Inc()
	switch kn.kind {
	case KindConstGap:
		return kn.mapConst(mem, f)
	case KindUnrolled:
		return kn.mapUnrolled(mem, f)
	case KindRowStride:
		return kn.mapRow(mem, f)
	case KindOffsetDispatch:
		return kn.mapOffset(mem, f)
	case KindGeneric:
		return kn.mapGeneric(mem, f)
	}
	return 0
}

// Sum accumulates the traversed elements in access order and returns
// the total along with the element count.
func (kn *Kernel) Sum(mem []float64) (float64, int64) {
	telInvoked[kn.kind].Inc()
	switch kn.kind {
	case KindConstGap:
		return kn.sumConst(mem)
	case KindUnrolled:
		return kn.sumUnrolled(mem)
	case KindRowStride:
		return kn.sumRow(mem)
	case KindOffsetDispatch:
		return kn.sumOffset(mem)
	case KindGeneric:
		return kn.sumGeneric(mem)
	}
	return 0, 0
}

// Gather copies the traversed elements into out in access order. out
// must have room for Count elements.
func (kn *Kernel) Gather(mem []float64, out []float64) int64 {
	telInvoked[kn.kind].Inc()
	switch kn.kind {
	case KindConstGap:
		return kn.gatherConst(mem, out)
	case KindUnrolled:
		return kn.gatherUnrolled(mem, out)
	case KindRowStride:
		return kn.gatherRow(mem, out)
	case KindOffsetDispatch:
		return kn.gatherOffset(mem, out)
	case KindGeneric:
		return Gather(mem, kn.start, kn.last, kn.gaps, out)
	}
	return 0
}

// Scatter writes in back into the traversed addresses in access order.
func (kn *Kernel) Scatter(mem []float64, in []float64) int64 {
	telInvoked[kn.kind].Inc()
	switch kn.kind {
	case KindConstGap:
		return kn.scatterConst(mem, in)
	case KindUnrolled:
		return kn.scatterUnrolled(mem, in)
	case KindRowStride:
		return kn.scatterRow(mem, in)
	case KindOffsetDispatch:
		return kn.scatterOffset(mem, in)
	case KindGeneric:
		return Scatter(mem, kn.start, kn.last, kn.gaps, in)
	}
	return 0
}

// ---------------------------------------------------------------------
// KindConstGap: count-driven constant-stride loops. The unit-gap fill
// runs over a subslice so the compiler drops the per-store bounds check.

func (kn *Kernel) fillConst(mem []float64, v float64) int64 {
	if kn.gap == 1 {
		seg := mem[kn.start : kn.start+kn.count]
		for i := range seg {
			seg[i] = v
		}
		return kn.count
	}
	if kn.gap <= 0 {
		// A zero gap only arises from an empty table, i.e. count ≤ 1.
		if kn.count > 0 {
			mem[kn.start] = v
		}
		return kn.count
	}
	return fillStrided(mem, kn.start, kn.last, kn.gap, v)
}

// fillStrided writes v at start, start+stride, …, last — four stores
// per trip so the loop-control overhead amortizes over wide strides.
func fillStrided(mem []float64, start, last, stride int64, v float64) int64 {
	a := start
	var n int64
	s2 := 2 * stride
	s3 := s2 + stride
	for a+s3 <= last {
		mem[a] = v
		mem[a+stride] = v
		mem[a+s2] = v
		mem[a+s3] = v
		a += s3 + stride
		n += 4
	}
	for ; a <= last; a += stride {
		mem[a] = v
		n++
	}
	return n
}

func (kn *Kernel) mapConst(mem []float64, f func(float64) float64) int64 {
	base := kn.start
	for r := kn.count; r > 0; r-- {
		mem[base] = f(mem[base])
		base += kn.gap
	}
	return kn.count
}

func (kn *Kernel) sumConst(mem []float64) (float64, int64) {
	var total float64
	if kn.gap == 1 {
		for _, x := range mem[kn.start : kn.start+kn.count] {
			total += x
		}
		return total, kn.count
	}
	base := kn.start
	for r := kn.count; r > 0; r-- {
		total += mem[base]
		base += kn.gap
	}
	return total, kn.count
}

func (kn *Kernel) gatherConst(mem []float64, out []float64) int64 {
	base := kn.start
	for i := int64(0); i < kn.count; i++ {
		out[i] = mem[base]
		base += kn.gap
	}
	return kn.count
}

func (kn *Kernel) scatterConst(mem []float64, in []float64) int64 {
	base := kn.start
	for i := int64(0); i < kn.count; i++ {
		mem[base] = in[i]
		base += kn.gap
	}
	return kn.count
}

// ---------------------------------------------------------------------
// KindUnrolled: the gap sequence becomes cumulative offsets; full
// periods execute with one trip-count test and constant offsets, the
// remainder walks the prefix table once.

func (kn *Kernel) fillUnrolled(mem []float64, v float64) int64 {
	base := kn.start
	pre, cyc := kn.prefix, kn.cycle
	period := int64(len(pre))
	full, rem := kn.count/period, kn.count%period
	switch period {
	case 2:
		c1 := pre[1]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			base += cyc
		}
	case 3:
		c1, c2 := pre[1], pre[2]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			base += cyc
		}
	case 4:
		c1, c2, c3 := pre[1], pre[2], pre[3]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			mem[base+c3] = v
			base += cyc
		}
	case 5:
		c1, c2, c3, c4 := pre[1], pre[2], pre[3], pre[4]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			mem[base+c3] = v
			mem[base+c4] = v
			base += cyc
		}
	case 6:
		c1, c2, c3, c4, c5 := pre[1], pre[2], pre[3], pre[4], pre[5]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			mem[base+c3] = v
			mem[base+c4] = v
			mem[base+c5] = v
			base += cyc
		}
	case 7:
		c1, c2, c3, c4, c5, c6 := pre[1], pre[2], pre[3], pre[4], pre[5], pre[6]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			mem[base+c3] = v
			mem[base+c4] = v
			mem[base+c5] = v
			mem[base+c6] = v
			base += cyc
		}
	case 8:
		c1, c2, c3, c4, c5, c6, c7 := pre[1], pre[2], pre[3], pre[4], pre[5], pre[6], pre[7]
		for ; full > 0; full-- {
			mem[base] = v
			mem[base+c1] = v
			mem[base+c2] = v
			mem[base+c3] = v
			mem[base+c4] = v
			mem[base+c5] = v
			mem[base+c6] = v
			mem[base+c7] = v
			base += cyc
		}
	default:
		for ; full > 0; full-- {
			for _, off := range pre {
				mem[base+off] = v
			}
			base += cyc
		}
	}
	for _, off := range pre[:rem] {
		mem[base+off] = v
	}
	return kn.count
}

func (kn *Kernel) mapUnrolled(mem []float64, f func(float64) float64) int64 {
	base := kn.start
	pre, cyc := kn.prefix, kn.cycle
	period := int64(len(pre))
	full, rem := kn.count/period, kn.count%period
	for ; full > 0; full-- {
		for _, off := range pre {
			mem[base+off] = f(mem[base+off])
		}
		base += cyc
	}
	for _, off := range pre[:rem] {
		mem[base+off] = f(mem[base+off])
	}
	return kn.count
}

func (kn *Kernel) sumUnrolled(mem []float64) (float64, int64) {
	base := kn.start
	pre, cyc := kn.prefix, kn.cycle
	period := int64(len(pre))
	full, rem := kn.count/period, kn.count%period
	var total float64
	for ; full > 0; full-- {
		for _, off := range pre {
			total += mem[base+off]
		}
		base += cyc
	}
	for _, off := range pre[:rem] {
		total += mem[base+off]
	}
	return total, kn.count
}

func (kn *Kernel) gatherUnrolled(mem []float64, out []float64) int64 {
	base := kn.start
	pre, cyc := kn.prefix, kn.cycle
	period := int64(len(pre))
	full, rem := kn.count/period, kn.count%period
	var n int64
	for ; full > 0; full-- {
		for _, off := range pre {
			out[n] = mem[base+off]
			n++
		}
		base += cyc
	}
	for _, off := range pre[:rem] {
		out[n] = mem[base+off]
		n++
	}
	return n
}

func (kn *Kernel) scatterUnrolled(mem []float64, in []float64) int64 {
	base := kn.start
	pre, cyc := kn.prefix, kn.cycle
	period := int64(len(pre))
	full, rem := kn.count/period, kn.count%period
	var n int64
	for ; full > 0; full-- {
		for _, off := range pre {
			mem[base+off] = in[n]
			n++
		}
		base += cyc
	}
	for _, off := range pre[:rem] {
		mem[base+off] = in[n]
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// KindRowStride: iterate block rows; inside a row the owned section
// elements are base+off, base+off+s, … — a constant-stride run — and
// the first touched offset advances by rowStep per row. No tables.

func (kn *Kernel) fillRow(mem []float64, v float64) int64 {
	var n int64
	off := kn.start % kn.blockK
	rowBase := kn.start - off
	lat := off % kn.stride
	for rowBase <= kn.last {
		end := rowBase + kn.blockK - 1
		if end > kn.last {
			end = kn.last
		}
		n += fillStrided(mem, rowBase+off, end, kn.stride, v)
		rowBase += kn.blockK
		lat += kn.rowStep
		if lat >= kn.stride {
			lat -= kn.stride
		}
		off = lat
	}
	return n
}

func (kn *Kernel) mapRow(mem []float64, f func(float64) float64) int64 {
	var n int64
	off := kn.start % kn.blockK
	rowBase := kn.start - off
	lat := off % kn.stride
	for rowBase <= kn.last {
		end := rowBase + kn.blockK - 1
		if end > kn.last {
			end = kn.last
		}
		for a := rowBase + off; a <= end; a += kn.stride {
			mem[a] = f(mem[a])
			n++
		}
		rowBase += kn.blockK
		lat += kn.rowStep
		if lat >= kn.stride {
			lat -= kn.stride
		}
		off = lat
	}
	return n
}

func (kn *Kernel) sumRow(mem []float64) (float64, int64) {
	var total float64
	var n int64
	off := kn.start % kn.blockK
	rowBase := kn.start - off
	lat := off % kn.stride
	for rowBase <= kn.last {
		end := rowBase + kn.blockK - 1
		if end > kn.last {
			end = kn.last
		}
		for a := rowBase + off; a <= end; a += kn.stride {
			total += mem[a]
			n++
		}
		rowBase += kn.blockK
		lat += kn.rowStep
		if lat >= kn.stride {
			lat -= kn.stride
		}
		off = lat
	}
	return total, n
}

func (kn *Kernel) gatherRow(mem []float64, out []float64) int64 {
	var n int64
	off := kn.start % kn.blockK
	rowBase := kn.start - off
	lat := off % kn.stride
	for rowBase <= kn.last {
		end := rowBase + kn.blockK - 1
		if end > kn.last {
			end = kn.last
		}
		for a := rowBase + off; a <= end; a += kn.stride {
			out[n] = mem[a]
			n++
		}
		rowBase += kn.blockK
		lat += kn.rowStep
		if lat >= kn.stride {
			lat -= kn.stride
		}
		off = lat
	}
	return n
}

func (kn *Kernel) scatterRow(mem []float64, in []float64) int64 {
	var n int64
	off := kn.start % kn.blockK
	rowBase := kn.start - off
	lat := off % kn.stride
	for rowBase <= kn.last {
		end := rowBase + kn.blockK - 1
		if end > kn.last {
			end = kn.last
		}
		for a := rowBase + off; a <= end; a += kn.stride {
			mem[a] = in[n]
			n++
		}
		rowBase += kn.blockK
		lat += kn.rowStep
		if lat >= kn.stride {
			lat -= kn.stride
		}
		off = lat
	}
	return n
}

// ---------------------------------------------------------------------
// KindOffsetDispatch: the Figure 8(d) flow over the shared
// offset-indexed transition tables.

func (kn *Kernel) fillOffset(mem []float64, v float64) int64 {
	base, i := kn.start, kn.startOff
	var n int64
	for base <= kn.last {
		mem[base] = v
		base += kn.delta[i]
		i = kn.next[i]
		n++
	}
	return n
}

func (kn *Kernel) mapOffset(mem []float64, f func(float64) float64) int64 {
	base, i := kn.start, kn.startOff
	var n int64
	for base <= kn.last {
		mem[base] = f(mem[base])
		base += kn.delta[i]
		i = kn.next[i]
		n++
	}
	return n
}

func (kn *Kernel) sumOffset(mem []float64) (float64, int64) {
	base, i := kn.start, kn.startOff
	var total float64
	var n int64
	for base <= kn.last {
		total += mem[base]
		base += kn.delta[i]
		i = kn.next[i]
		n++
	}
	return total, n
}

func (kn *Kernel) gatherOffset(mem []float64, out []float64) int64 {
	base, i := kn.start, kn.startOff
	var n int64
	for base <= kn.last {
		out[n] = mem[base]
		base += kn.delta[i]
		i = kn.next[i]
		n++
	}
	return n
}

func (kn *Kernel) scatterOffset(mem []float64, in []float64) int64 {
	base, i := kn.start, kn.startOff
	var n int64
	for base <= kn.last {
		mem[base] = in[n]
		base += kn.delta[i]
		i = kn.next[i]
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// KindGeneric map/sum (fill, gather and scatter reuse the package-level
// ShapeB/Gather/Scatter loops).

func (kn *Kernel) mapGeneric(mem []float64, f func(float64) float64) int64 {
	length := int64(len(kn.gaps))
	base := kn.start
	i := int64(0)
	var n int64
	for base <= kn.last {
		mem[base] = f(mem[base])
		base += kn.gaps[i]
		i++
		if i == length {
			i = 0
		}
		n++
	}
	return n
}

func (kn *Kernel) sumGeneric(mem []float64) (float64, int64) {
	length := int64(len(kn.gaps))
	base := kn.start
	i := int64(0)
	var total float64
	var n int64
	for base <= kn.last {
		total += mem[base]
		base += kn.gaps[i]
		i++
		if i == length {
			i = 0
		}
		n++
	}
	return total, n
}
