package codegen

// Optional one-shot micro-calibration for kernel selection. The static
// selector (Select) already encodes the paper's cost model, but cache
// geometry occasionally inverts a close call — e.g. a period-8 unroll
// on a machine where the generic walk saturates memory bandwidth
// anyway. With calibration enabled, Compile times the selected kernel
// against the generic fallback once per kernel *class* (kind, period,
// stride, block shape) and remembers the winner, so the probe cost is
// paid once per class per process, not per plan.
//
// Calibration is OFF by default: the static choice is a pure function
// of the spec, and keeping it that way preserves the "selection is
// deterministic for a given Problem" guarantee. Opt in only when the
// deployment can tolerate plan-compile times that depend on machine
// state.

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	calibrateFlag atomic.Bool
	calWinners    sync.Map // calKey -> KernelKind
	calScratch    sync.Pool
)

// calKey identifies one kernel class for the winner cache. Two specs
// with the same class have the same inner-loop structure, so one probe
// decides for both.
type calKey struct {
	kind   KernelKind
	period int
	stride int64
	block  int64
}

// SetCalibration toggles the one-shot timing probe inside Compile.
// Disabled by default; see the package comment above for the
// determinism trade-off.
func SetCalibration(on bool) { calibrateFlag.Store(on) }

// ResetCalibration forgets every cached probe winner (test hook).
func ResetCalibration() {
	calWinners.Range(func(k, _ any) bool {
		calWinners.Delete(k)
		return true
	})
}

func calibrationOn() bool { return calibrateFlag.Load() }

// calProbeCap bounds the scratch buffer the probe fills, so probing a
// plan over a huge array does not allocate a huge array.
const calProbeCap = 1 << 16

// calibrated returns kn, or the generic fallback if the probe says the
// specialization loses on this machine. Only Unrolled and RowStride are
// probed — the kinds whose win over the tabled walk depends on cache
// geometry rather than on strictly doing less work per element.
func calibrated(sp Spec, kn Kernel) Kernel {
	switch kn.kind {
	case KindUnrolled, KindRowStride:
	default:
		// None/ConstGap/Generic have nothing cheaper to fall back to, and
		// OffsetDispatch is only selected for table-only specs, where the
		// generic contestant (a materialized gap list) does not exist.
		return kn
	}
	key := calKey{kind: kn.kind, period: len(sp.Gaps), stride: sp.Problem.S, block: sp.Problem.K}
	if w, ok := calWinners.Load(key); ok {
		if w.(KernelKind) == KindGeneric {
			return genericKernel(sp)
		}
		return kn
	}
	winner := probe(sp, kn)
	calWinners.Store(key, winner)
	if winner == KindGeneric {
		return genericKernel(sp)
	}
	return kn
}

// probe times a bounded fill through the specialized kernel and the
// generic fallback and returns the faster kind. Both run on the same
// pooled scratch memory over an identical truncated element range.
func probe(sp Spec, kn Kernel) KernelKind {
	need := sp.Last + 1
	if need > calProbeCap {
		need = calProbeCap
	}
	if need <= 0 {
		return kn.kind
	}
	var mem []float64
	if v := calScratch.Get(); v != nil {
		mem = *(v.(*[]float64))
	}
	if int64(len(mem)) < need {
		mem = make([]float64, calProbeCap)
	}
	defer calScratch.Put(&mem)

	// Truncate both contestants to the scratch window so they touch the
	// same elements; relative speed is what matters, not coverage. The
	// unrolled kernel is count-driven, so its trip count must shrink too
	// — whole periods only, keeping every store inside the window.
	spec := kn
	spec.last = need - 1
	if spec.kind == KindUnrolled {
		period := int64(len(spec.prefix))
		maxPre := spec.prefix[period-1]
		avail := need - 1 - spec.start - maxPre
		if avail <= 0 || spec.cycle <= 0 {
			return kn.kind
		}
		spec.count = (avail / spec.cycle) * period
		if spec.count <= 0 {
			return kn.kind
		}
	}
	gen := genericKernel(sp)
	gen.last = need - 1

	tSpec := bestOf(3, func() { spec.Fill(mem, 1) })
	tGen := bestOf(3, func() { gen.Fill(mem, 1) })
	if tGen < tSpec {
		return KindGeneric
	}
	return kn.kind
}

// bestOf runs f once to warm caches, then returns the fastest of reps
// timed runs.
func bestOf(reps int, f func()) time.Duration {
	f()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
