package codegen

import (
	"testing"

	"repro/internal/core"
)

// fz folds an arbitrary fuzzed int64 into [lo, hi].
func fz(v, lo, hi int64) int64 {
	span := hi - lo + 1
	v %= span
	if v < 0 {
		v += span
	}
	return lo + v
}

// FuzzKernelShapeAgreement fuzzes (p, k, l, u, s) and checks, for every
// processor of the configuration, that every Figure 8 shape and every
// valid specialized kernel writes the identical element set — with
// core.Problem.Addresses (the enumerated lattice) as ground truth — and
// that the kernels' gather order matches the access sequence exactly.
func FuzzKernelShapeAgreement(f *testing.F) {
	f.Add(int64(4), int64(8), int64(4), int64(320), int64(9))   // paper example
	f.Add(int64(4), int64(1), int64(0), int64(400), int64(3))   // cyclic(1)
	f.Add(int64(4), int64(30), int64(0), int64(119), int64(3))  // block-ish
	f.Add(int64(4), int64(16), int64(0), int64(900), int64(5))  // row stride
	f.Add(int64(4), int64(16), int64(5), int64(900), int64(23)) // offset dispatch
	f.Add(int64(2), int64(3), int64(0), int64(50), int64(1))    // unit stride
	f.Add(int64(7), int64(5), int64(11), int64(13), int64(29))  // tiny range

	f.Fuzz(func(t *testing.T, p, k, l, u, s int64) {
		p = fz(p, 1, 8)
		k = fz(k, 1, 32)
		s = fz(s, 1, 2*p*k+3)
		l = fz(l, 0, 2*p*k)
		u = fz(u, l, l+3000)

		for m := int64(0); m < p; m++ {
			pr := core.Problem{P: p, K: k, L: l, S: s, M: m}
			if pr.Validate() != nil {
				return
			}
			addrs, err := pr.Addresses(u)
			if err != nil {
				t.Fatalf("%+v u=%d: Addresses: %v", pr, u, err)
			}
			want := make(map[int64]bool, len(addrs))
			for _, a := range addrs {
				want[a] = true
			}
			start, last := int64(-1), int64(-1)
			if len(addrs) > 0 {
				start, last = addrs[0], addrs[len(addrs)-1]
			}
			mem := make([]float64, last+2+2) // +2 slack catches overruns as writes, not panics

			check := func(label string, wrote int64) {
				t.Helper()
				if wrote != int64(len(addrs)) {
					t.Fatalf("%+v u=%d %s: wrote %d, want %d", pr, u, label, wrote, len(addrs))
				}
				for a, v := range mem {
					if want[int64(a)] != (v != 0) {
						t.Fatalf("%+v u=%d %s: address %d wrong (owned=%v, written=%v)",
							pr, u, label, a, want[int64(a)], v != 0)
					}
				}
				clear(mem)
			}

			seq, err := core.Lattice(pr)
			if err != nil {
				t.Fatalf("%+v: Lattice: %v", pr, err)
			}
			check("ShapeA", ShapeA(mem, start, last, seq.Gaps, 1))
			check("ShapeB", ShapeB(mem, start, last, seq.Gaps, 1))
			check("ShapeC", ShapeC(mem, start, last, seq.Gaps, 1))
			tab, err := core.OffsetTables(pr)
			if err != nil {
				t.Fatalf("%+v: OffsetTables: %v", pr, err)
			}
			check("ShapeD", ShapeD(mem, start, last, tab, 1))
			if w, ok, _ := core.NewWalker(pr); ok {
				check("ShapeWalker", ShapeWalker(mem, last, w, 1))
			}

			ts, err := core.NewTableSet(p, k, l, s)
			if err != nil {
				t.Fatalf("%+v: NewTableSet: %v", pr, err)
			}
			sp := Spec{
				Problem: pr, Start: start, Last: last,
				Count: int64(len(addrs)), Gaps: seq.Gaps,
			}
			if delta, next, ok := ts.Transitions(); ok {
				sp.Delta, sp.Next = delta, next
			}
			for _, kn := range Candidates(sp) {
				kn := kn
				label := "kernel/" + kn.Kind().String()
				check(label, kn.Fill(mem, 1))

				// Access order: gather must return elements in sequence order.
				for i, a := range addrs {
					mem[a] = float64(i + 1)
				}
				out := make([]float64, len(addrs))
				if got := kn.Gather(mem, out); got != int64(len(addrs)) {
					t.Fatalf("%+v u=%d %s: gather count %d, want %d", pr, u, label, got, len(addrs))
				}
				for i := range out {
					if out[i] != float64(i+1) {
						t.Fatalf("%+v u=%d %s: gather order wrong at %d", pr, u, label, i)
					}
				}
				clear(mem)
			}
		}
	})
}
