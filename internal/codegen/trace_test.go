package codegen

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// Walk must enumerate exactly the reference address sequence — for
// every kernel candidate of every fixture family, in access order.
func TestKernelWalkMatchesAddresses(t *testing.T) {
	for _, tc := range kernelProblems() {
		f := newFixture(t, tc.pr, tc.u)
		sp := kernelSpec(t, f)
		for _, kn := range Candidates(sp) {
			kn := kn
			var got []int64
			n := kn.Walk(func(a int64) { got = append(got, a) })
			if n != int64(len(f.wantAddrs)) {
				t.Errorf("%+v u=%d %s: Walk count = %d, want %d",
					tc.pr, tc.u, kn.Kind(), n, len(f.wantAddrs))
			}
			if len(f.wantAddrs) == 0 {
				if len(got) != 0 {
					t.Errorf("%+v u=%d %s: Walk visited %d addrs on empty spec", tc.pr, tc.u, kn.Kind(), len(got))
				}
				continue
			}
			if !reflect.DeepEqual(got, f.wantAddrs) {
				t.Errorf("%+v u=%d %s: Walk sequence differs from Problem.Addresses",
					tc.pr, tc.u, kn.Kind())
			}
		}
	}
}

// recorded drains the recorder into (addr, write) pairs for rank 0.
func recorded(t *testing.T, ar *telemetry.AccessRecorder) []telemetry.AccessRec {
	t.Helper()
	doc := ar.Doc()
	for _, seq := range doc.Seqs {
		if seq.Rank == 0 {
			return seq.Accesses
		}
	}
	return nil
}

// The traced ops must produce the same memory effects and return values
// as their untraced twins, and record the right (addr, rw) sequence.
func TestKernelTracedOpsMatchUntraced(t *testing.T) {
	for _, tc := range kernelProblems() {
		f := newFixture(t, tc.pr, tc.u)
		sp := kernelSpec(t, f)
		n := int64(len(f.wantAddrs))
		for _, kn := range Candidates(sp) {
			kn := kn
			label := kn.Kind().String()
			cap := int(2*n) + 64

			// Fill: writes only.
			ar := telemetry.NewAccessRecorder(1, cap, 1)
			f.verify(t, label+"/fill-traced", kn.FillTraced(f.mem, 1.0, ar, 0, 7))
			recs := recorded(t, ar)
			if int64(len(recs)) != n {
				t.Fatalf("%s: fill recorded %d accesses, want %d", label, len(recs), n)
			}
			for i, r := range recs {
				if r.Addr != f.wantAddrs[i] || !r.Write || r.Step != 7 {
					t.Fatalf("%s: fill record %d = %+v, want write of %d at step 7", label, i, r, f.wantAddrs[i])
				}
			}

			// Map: read then write per element.
			ar = telemetry.NewAccessRecorder(1, cap, 1)
			f.verify(t, label+"/map-traced", kn.MapTraced(f.mem, func(x float64) float64 { return x + 1 }, ar, 0, 1))
			recs = recorded(t, ar)
			if int64(len(recs)) != 2*n {
				t.Fatalf("%s: map recorded %d accesses, want %d", label, len(recs), 2*n)
			}
			for i := int64(0); i < n; i++ {
				rd, wr := recs[2*i], recs[2*i+1]
				if rd.Addr != f.wantAddrs[i] || rd.Write || wr.Addr != f.wantAddrs[i] || !wr.Write {
					t.Fatalf("%s: map records %d = %+v %+v", label, i, rd, wr)
				}
			}

			// Sum: reads only, same total as untraced.
			var want float64
			for i, a := range f.wantAddrs {
				f.mem[a] = float64(i + 1)
				want += float64(i + 1)
			}
			ar = telemetry.NewAccessRecorder(1, cap, 1)
			got, cnt := kn.SumTraced(f.mem, ar, 0, 2)
			if cnt != n || math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s: SumTraced = (%v, %d), want (%v, %d)", label, got, cnt, want, n)
			}
			recs = recorded(t, ar)
			if int64(len(recs)) != n {
				t.Fatalf("%s: sum recorded %d accesses, want %d", label, len(recs), n)
			}
			for i, r := range recs {
				if r.Addr != f.wantAddrs[i] || r.Write {
					t.Fatalf("%s: sum record %d = %+v", label, i, r)
				}
			}

			// Gather reads; Scatter writes; both round-trip.
			buf := make([]float64, n)
			ar = telemetry.NewAccessRecorder(1, cap, 1)
			if got := kn.GatherTraced(f.mem, buf, ar, 0, 3); got != n {
				t.Fatalf("%s: GatherTraced count = %d, want %d", label, got, n)
			}
			for i := range buf {
				if buf[i] != float64(i+1) {
					t.Fatalf("%s: GatherTraced order wrong at %d", label, i)
				}
			}
			recs = recorded(t, ar)
			if int64(len(recs)) != n || (n > 0 && recs[0].Write) {
				t.Fatalf("%s: gather records = %d (first write=%v)", label, len(recs), n > 0 && recs[0].Write)
			}
			mem2 := make([]float64, len(f.mem))
			ar = telemetry.NewAccessRecorder(1, cap, 1)
			if got := kn.ScatterTraced(mem2, buf, ar, 0, 4); got != n {
				t.Fatalf("%s: ScatterTraced count = %d, want %d", label, got, n)
			}
			if !reflect.DeepEqual(mem2, f.mem) {
				t.Fatalf("%s: ScatterTraced(GatherTraced(mem)) != mem", label)
			}
			recs = recorded(t, ar)
			if int64(len(recs)) != n || (n > 0 && !recs[n-1].Write) {
				t.Fatalf("%s: scatter records = %d", label, len(recs))
			}
			clear(f.mem)
		}
	}
}
