package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

var emitProblem = core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}

func TestEmitCCodeShapeB(t *testing.T) {
	out, err := EmitCCode(EmitB, emitProblem, "100.0")
	if err != nil {
		t.Fatal(err)
	}
	// The compiled-in AM table is the paper's.
	if !strings.Contains(out, "{3, 12, 15, 12, 3, 12, 3, 12}") {
		t.Errorf("AM table missing:\n%s", out)
	}
	for _, want := range []string{
		"a[base] = 100.0;",
		"base += deltaM[i++];",
		"if (i == 8) i = 0;",
		"while (base <= lastmem)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitCCodeShapeA(t *testing.T) {
	out, err := EmitCCode(EmitA, emitProblem, "0.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "i = (i + 1) % 8;") {
		t.Errorf("mod advance missing:\n%s", out)
	}
}

func TestEmitCCodeShapeC(t *testing.T) {
	out, err := EmitCCode(EmitC_, emitProblem, "0.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"for (i = 0; i < 8; i++)", "goto done;", "done:;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitCCodeShapeD(t *testing.T) {
	out, err := EmitCCode(EmitD, emitProblem, "0.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"static const long deltaM[8]",
		"static const long nextoffset[8]",
		"long i = 5; /* startoffset */", // start 13, local offset 5
		"i = nextoffset[i];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitEmptyProcessor(t *testing.T) {
	pr := core.Problem{P: 4, K: 2, L: 3, S: 8, M: 0} // owns nothing
	for _, sh := range []EmitShape{EmitA, EmitB, EmitC_, EmitD} {
		out, err := EmitCCode(sh, pr, "0.0")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "owns no section elements") {
			t.Errorf("shape %v: empty marker missing:\n%s", sh, out)
		}
	}
	out, err := EmitTableFree(pr, "0.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "owns no section elements") {
		t.Errorf("table-free: empty marker missing:\n%s", out)
	}
}

func TestEmitTableFree(t *testing.T) {
	out, err := EmitTableFree(emitProblem, "100.0")
	if err != nil {
		t.Fatal(err)
	}
	// The Theorem 3 constants for p=4, k=8, s=9 on processor 1:
	// R=(4,1) gap 12, L=(5,-1) gap 3, block range [8,16), start offset 13.
	for _, want := range []string{
		"long offset = 13;",
		"if (offset + 4 < 16)",
		"base += 12; offset += 4;",
		"base += 3; offset -= 5;",
		"if (offset < 8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// No tables in the table-free shape.
	if strings.Contains(out, "deltaM") {
		t.Errorf("table-free shape contains a table:\n%s", out)
	}
}

func TestEmitTableFreeSingleGap(t *testing.T) {
	pr := core.Problem{P: 4, K: 2, L: 3, S: 8, M: 1} // single-offset case
	out, err := EmitTableFree(pr, "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "base += 2;") { // k*s/d = 2*8/8
		t.Errorf("constant-gap loop missing:\n%s", out)
	}
}

func TestEmitInvalidProblem(t *testing.T) {
	bad := core.Problem{P: 0, K: 8, L: 0, S: 9, M: 0}
	if _, err := EmitCCode(EmitB, bad, "0.0"); err == nil {
		t.Error("invalid problem should fail")
	}
	if _, err := EmitTableFree(bad, "0.0"); err == nil {
		t.Error("invalid problem should fail")
	}
}

func TestEmitShapeString(t *testing.T) {
	if EmitA.String() != "8(a)" || EmitD.String() != "8(d)" {
		t.Error("shape names wrong")
	}
	if EmitShape(9).String() != "EmitShape(9)" {
		t.Error("unknown shape name wrong")
	}
}

// simulateEmittedTableFree interprets the constants that EmitTableFree
// would compile in, confirming the emitted control flow is the Theorem 3
// walk (the same state machine core.Walker implements).
func TestEmittedTableFreeSemantics(t *testing.T) {
	pr := emitProblem
	seq, err := core.Lattice(pr)
	if err != nil {
		t.Fatal(err)
	}
	basis, ok, err := core.Vectors(pr.P, pr.K, pr.S)
	if err != nil || !ok {
		t.Fatal(err)
	}
	lo, hi := pr.K*pr.M, pr.K*(pr.M+1)
	base := seq.StartLocal
	offset := seq.Start % (pr.P * pr.K)
	var addrs []int64
	for len(addrs) < 20 {
		addrs = append(addrs, base)
		if offset+basis.R.B < hi {
			base += basis.GapR
			offset += basis.R.B
		} else {
			base += basis.GapL
			offset -= basis.L.B
			if offset < lo {
				base += basis.GapR
				offset += basis.R.B
			}
		}
	}
	// Compare to the AM-table walk.
	want := seq.StartLocal
	for i, got := range addrs {
		if got != want {
			t.Fatalf("emitted semantics diverge at %d: %d != %d", i, got, want)
		}
		want += seq.Gaps[i%len(seq.Gaps)]
	}
}

// TestEmittedTableFreeSemanticsRandomized interprets the constants that
// EmitTableFree compiles in across random problems, confirming the
// emitted control flow always reproduces the AM table walk.
func TestEmittedTableFreeSemanticsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 300; trial++ {
		p := r.Int63n(8) + 1
		k := r.Int63n(12) + 2
		s := r.Int63n(3*p*k) + 1
		l := r.Int63n(2 * p * k)
		m := r.Int63n(p)
		pr := core.Problem{P: p, K: k, L: l, S: s, M: m}
		seq, err := core.Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Empty() || len(seq.Gaps) < 2 {
			continue
		}
		basis, ok, err := core.Vectors(p, k, s)
		if err != nil || !ok {
			t.Fatalf("%+v: basis missing: %v", pr, err)
		}
		lo, hi := k*m, k*(m+1)
		base := seq.StartLocal
		offset := seq.Start % (p * k)
		want := seq.StartLocal
		for i := 0; i < 3*len(seq.Gaps); i++ {
			if base != want {
				t.Fatalf("%+v: emitted semantics diverge at step %d: %d != %d",
					pr, i, base, want)
			}
			// The emitted if/else chain.
			if offset+basis.R.B < hi {
				base += basis.GapR
				offset += basis.R.B
			} else {
				base += basis.GapL
				offset -= basis.L.B
				if offset < lo {
					base += basis.GapR
					offset += basis.R.B
				}
			}
			want += seq.Gaps[i%len(seq.Gaps)]
		}
	}
}
