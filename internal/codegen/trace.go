package codegen

// Access-traced kernel execution. Every kernel kind can enumerate the
// exact local-address sequence its node loop touches (Walk), and each
// of the five ops has a *Traced variant that performs the same work as
// its untraced twin while streaming (addr, rw, step) records into the
// active telemetry.AccessRecorder. The traced variants are dispatched
// by internal/hpf only when a recorder is installed, so the untraced
// hot paths stay byte-for-byte what PR 7 benchmarked; the traced paths
// favour a single shared walker over 25 duplicated loops and accept the
// closure-call overhead — recording is an observability mode, not a
// production path.

import "repro/internal/telemetry"

// Walk calls visit with every local address the kernel's traversal
// touches, in access order, and returns the number of addresses
// visited. It is the address-sequence oracle for the traced ops, the
// reuse-distance profiler and the differential tests; it performs no
// memory operation itself.
func (kn *Kernel) Walk(visit func(addr int64)) int64 {
	switch kn.kind {
	case KindConstGap:
		base := kn.start
		for r := kn.count; r > 0; r-- {
			visit(base)
			base += kn.gap
		}
		return kn.count
	case KindUnrolled:
		base := kn.start
		pre, cyc := kn.prefix, kn.cycle
		period := int64(len(pre))
		full, rem := kn.count/period, kn.count%period
		for ; full > 0; full-- {
			for _, off := range pre {
				visit(base + off)
			}
			base += cyc
		}
		for _, off := range pre[:rem] {
			visit(base + off)
		}
		return kn.count
	case KindRowStride:
		var n int64
		off := kn.start % kn.blockK
		rowBase := kn.start - off
		lat := off % kn.stride
		for rowBase <= kn.last {
			end := rowBase + kn.blockK - 1
			if end > kn.last {
				end = kn.last
			}
			for a := rowBase + off; a <= end; a += kn.stride {
				visit(a)
				n++
			}
			rowBase += kn.blockK
			lat += kn.rowStep
			if lat >= kn.stride {
				lat -= kn.stride
			}
			off = lat
		}
		return n
	case KindOffsetDispatch:
		base, i := kn.start, kn.startOff
		var n int64
		for base <= kn.last {
			visit(base)
			base += kn.delta[i]
			i = kn.next[i]
			n++
		}
		return n
	case KindGeneric:
		length := int64(len(kn.gaps))
		base := kn.start
		i := int64(0)
		var n int64
		for base <= kn.last {
			visit(base)
			base += kn.gaps[i]
			i++
			if i == length {
				i = 0
			}
			n++
		}
		return n
	}
	return 0
}

// FillTraced is Fill with every store recorded as a write access.
func (kn *Kernel) FillTraced(mem []float64, v float64, ar *telemetry.AccessRecorder, rank int32, step uint32) int64 {
	telInvoked[kn.kind].Inc()
	return kn.Walk(func(a int64) {
		mem[a] = v
		ar.Record(rank, a, telemetry.AccessWrite, step)
	})
}

// MapTraced is Map with each element's load and store recorded.
func (kn *Kernel) MapTraced(mem []float64, f func(float64) float64, ar *telemetry.AccessRecorder, rank int32, step uint32) int64 {
	telInvoked[kn.kind].Inc()
	return kn.Walk(func(a int64) {
		x := mem[a]
		ar.Record(rank, a, telemetry.AccessRead, step)
		mem[a] = f(x)
		ar.Record(rank, a, telemetry.AccessWrite, step)
	})
}

// SumTraced is Sum with every load recorded as a read access.
func (kn *Kernel) SumTraced(mem []float64, ar *telemetry.AccessRecorder, rank int32, step uint32) (float64, int64) {
	telInvoked[kn.kind].Inc()
	var total float64
	n := kn.Walk(func(a int64) {
		total += mem[a]
		ar.Record(rank, a, telemetry.AccessRead, step)
	})
	return total, n
}

// GatherTraced is Gather with every distributed-array load recorded
// (stores into the caller's dense staging buffer are not part of the
// distributed access sequence and are not recorded).
func (kn *Kernel) GatherTraced(mem []float64, out []float64, ar *telemetry.AccessRecorder, rank int32, step uint32) int64 {
	telInvoked[kn.kind].Inc()
	var i int64
	return kn.Walk(func(a int64) {
		out[i] = mem[a]
		i++
		ar.Record(rank, a, telemetry.AccessRead, step)
	})
}

// ScatterTraced is Scatter with every distributed-array store recorded.
func (kn *Kernel) ScatterTraced(mem []float64, in []float64, ar *telemetry.AccessRecorder, rank int32, step uint32) int64 {
	telInvoked[kn.kind].Inc()
	var i int64
	return kn.Walk(func(a int64) {
		mem[a] = in[i]
		i++
		ar.Record(rank, a, telemetry.AccessWrite, step)
	})
}
