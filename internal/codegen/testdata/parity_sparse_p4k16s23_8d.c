/* 8(d) node code: p=4 k=16 l=5 s=23, processor 2 */
static const long deltaM[16] = {21, 21, 21, 21, 21, 21, 21, 21, 21, 21, 21, 40, 40, 19, 19, 19};
static const long nextoffset[16] = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 3, 4, 0, 1, 2};
long base = startmem;
long i = 1; /* startoffset */
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i];
    i = nextoffset[i];
}
