/* 8(b) node code: p=4 k=8 l=0 s=9, processor 0 */
static const long deltaM[8] = {12, 15, 12, 3, 12, 3, 12, 3};
long base = startmem;
long i = 0;
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i++];
    if (i == 8) i = 0;
}
