/* 8(b) node code: p=4 k=16 l=5 s=23, processor 2 */
static const long deltaM[16] = {21, 21, 40, 21, 21, 19, 21, 21, 21, 19, 21, 21, 40, 21, 21, 19};
long base = startmem;
long i = 0;
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i++];
    if (i == 16) i = 0;
}
