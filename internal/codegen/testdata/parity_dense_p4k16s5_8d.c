/* 8(d) node code: p=4 k=16 l=0 s=5, processor 1 */
static const long deltaM[16] = {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 7, 7, 7, 2, 2};
static const long nextoffset[16] = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 2, 3, 4, 0, 1};
long base = startmem;
long i = 4; /* startoffset */
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i];
    i = nextoffset[i];
}
