/* 8(d) node code: p=4 k=8 l=4 s=9, processor 1 */
static const long deltaM[8] = {12, 12, 12, 12, 15, 3, 3, 3};
static const long nextoffset[8] = {4, 5, 6, 7, 3, 0, 1, 2};
long base = startmem;
long i = 5; /* startoffset */
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i];
    i = nextoffset[i];
}
