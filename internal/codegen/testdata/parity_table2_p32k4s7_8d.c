/* 8(d) node code: p=32 k=4 l=0 s=7, processor 5 */
static const long deltaM[4] = {11, 13, 2, 2};
static const long nextoffset[4] = {3, 2, 0, 1};
long base = startmem;
long i = 1; /* startoffset */
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i];
    i = nextoffset[i];
}
