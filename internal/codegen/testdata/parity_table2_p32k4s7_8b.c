/* 8(b) node code: p=32 k=4 l=0 s=7, processor 5 */
static const long deltaM[4] = {13, 2, 11, 2};
long base = startmem;
long i = 0;
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i++];
    if (i == 4) i = 0;
}
