/* 8(b) node code: p=4 k=16 l=0 s=5, processor 1 */
static const long deltaM[16] = {5, 5, 2, 5, 5, 5, 2, 5, 5, 7, 5, 5, 7, 5, 5, 7};
long base = startmem;
long i = 0;
while (base <= lastmem) {
    a[base] = 1.0;
    base += deltaM[i++];
    if (i == 16) i = 0;
}
