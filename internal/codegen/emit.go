package codegen

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// EmitShape selects which Figure 8 template EmitC renders.
type EmitShape int

// The four paper shapes.
const (
	EmitA  EmitShape = iota // Figure 8(a): mod
	EmitB                   // Figure 8(b): test and reset
	EmitC_                  // Figure 8(c): for / goto
	EmitD                   // Figure 8(d): offset-indexed two-table
)

func (s EmitShape) String() string {
	switch s {
	case EmitA:
		return "8(a)"
	case EmitB:
		return "8(b)"
	case EmitC_:
		return "8(c)"
	case EmitD:
		return "8(d)"
	}
	return fmt.Sprintf("EmitShape(%d)", int(s))
}

// EmitC generates the C node code of the requested Figure 8 shape for a
// concrete problem, with the AM table compiled in as an initialized
// array — what an HPF compiler would emit when p, k, l and s are
// compile-time constants (Section 6.1: "the compiler could compute the
// table of memory gaps for each processor"). The emitted fragment
// performs A(l:u:s) = value on the local array `a`; `startmem` and
// `lastmem` are the local addresses of the processor's first and last
// owned elements.
//
// Processors that own no section elements get an empty (comment-only)
// fragment.
func EmitCCode(shape EmitShape, pr core.Problem, value string) (string, error) {
	seq, err := core.Lattice(pr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s node code: p=%d k=%d l=%d s=%d, processor %d */\n",
		shape, pr.P, pr.K, pr.L, pr.S, pr.M)
	if seq.Empty() {
		b.WriteString("/* this processor owns no section elements */\n")
		return b.String(), nil
	}

	if shape == EmitD {
		tab, err := core.OffsetTables(pr)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "static const long deltaM[%d] = {%s};\n",
			pr.K, joinInts(tab.Delta))
		fmt.Fprintf(&b, "static const long nextoffset[%d] = {%s};\n",
			pr.K, joinInts(tab.NextOffset))
		fmt.Fprintf(&b, "long base = startmem;\nlong i = %d; /* startoffset */\n", tab.Start)
		fmt.Fprintf(&b, "while (base <= lastmem) {\n")
		fmt.Fprintf(&b, "    a[base] = %s;\n", value)
		fmt.Fprintf(&b, "    base += deltaM[i];\n")
		fmt.Fprintf(&b, "    i = nextoffset[i];\n")
		fmt.Fprintf(&b, "}\n")
		return b.String(), nil
	}

	fmt.Fprintf(&b, "static const long deltaM[%d] = {%s};\n",
		len(seq.Gaps), joinInts(seq.Gaps))
	fmt.Fprintf(&b, "long base = startmem;\nlong i = 0;\n")
	switch shape {
	case EmitA:
		fmt.Fprintf(&b, "while (base <= lastmem) {\n")
		fmt.Fprintf(&b, "    a[base] = %s;\n", value)
		fmt.Fprintf(&b, "    base += deltaM[i];\n")
		fmt.Fprintf(&b, "    i = (i + 1) %% %d;\n", len(seq.Gaps))
		fmt.Fprintf(&b, "}\n")
	case EmitB:
		fmt.Fprintf(&b, "while (base <= lastmem) {\n")
		fmt.Fprintf(&b, "    a[base] = %s;\n", value)
		fmt.Fprintf(&b, "    base += deltaM[i++];\n")
		fmt.Fprintf(&b, "    if (i == %d) i = 0;\n", len(seq.Gaps))
		fmt.Fprintf(&b, "}\n")
	case EmitC_:
		fmt.Fprintf(&b, "while (1) {\n")
		fmt.Fprintf(&b, "    for (i = 0; i < %d; i++) {\n", len(seq.Gaps))
		fmt.Fprintf(&b, "        a[base] = %s;\n", value)
		fmt.Fprintf(&b, "        base += deltaM[i];\n")
		fmt.Fprintf(&b, "        if (base > lastmem) goto done;\n")
		fmt.Fprintf(&b, "    }\n")
		fmt.Fprintf(&b, "}\ndone:;\n")
	default:
		return "", fmt.Errorf("codegen: unknown shape %v", shape)
	}
	return b.String(), nil
}

// EmitTableFree generates the table-free node code of Section 6.2
// (reference [12]): no arrays, just the R/L basis constants and the two
// Theorem 3 tests, mirroring lines 35 and 44 of Figure 5.
func EmitTableFree(pr core.Problem, value string) (string, error) {
	seq, err := core.Lattice(pr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* table-free node code: p=%d k=%d l=%d s=%d, processor %d */\n",
		pr.P, pr.K, pr.L, pr.S, pr.M)
	if seq.Empty() {
		b.WriteString("/* this processor owns no section elements */\n")
		return b.String(), nil
	}
	if len(seq.Gaps) == 1 {
		fmt.Fprintf(&b, "long base = startmem;\n")
		fmt.Fprintf(&b, "while (base <= lastmem) {\n")
		fmt.Fprintf(&b, "    a[base] = %s;\n", value)
		fmt.Fprintf(&b, "    base += %d;\n", seq.Gaps[0])
		fmt.Fprintf(&b, "}\n")
		return b.String(), nil
	}
	basis, ok, err := core.Vectors(pr.P, pr.K, pr.S)
	if err != nil || !ok {
		return "", fmt.Errorf("codegen: basis unavailable: %v", err)
	}
	lo, hi := pr.K*pr.M, pr.K*(pr.M+1)
	fmt.Fprintf(&b, "long base = startmem;\n")
	fmt.Fprintf(&b, "long offset = %d; /* start mod pk */\n", seq.Start%(pr.P*pr.K))
	fmt.Fprintf(&b, "while (base <= lastmem) {\n")
	fmt.Fprintf(&b, "    a[base] = %s;\n", value)
	fmt.Fprintf(&b, "    if (offset + %d < %d) {          /* Equation 1 */\n", basis.R.B, hi)
	fmt.Fprintf(&b, "        base += %d; offset += %d;\n", basis.GapR, basis.R.B)
	fmt.Fprintf(&b, "    } else {\n")
	fmt.Fprintf(&b, "        base += %d; offset -= %d;    /* Equation 2 */\n", basis.GapL, basis.L.B)
	fmt.Fprintf(&b, "        if (offset < %d) {           /* Equation 3 */\n", lo)
	fmt.Fprintf(&b, "            base += %d; offset += %d;\n", basis.GapR, basis.R.B)
	fmt.Fprintf(&b, "        }\n")
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

func joinInts(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}
