// Benchmarks regenerating the paper's evaluation section with the
// standard testing.B machinery. One benchmark family per table/figure:
//
//	BenchmarkTable1   — AM-table construction, Lattice vs Sorting
//	                    (k × stride grid of Table 1)
//	BenchmarkFigure7  — the s=7 slice of Table 1 (the data Figure 7 plots)
//	BenchmarkTable2   — node-code execution time for the Figure 8 shapes
//	BenchmarkAblation — design-choice ablations (radix vs comparison sort,
//	                    table-free walker vs tables, start-scan share)
//
// Each Table 1 iteration performs the paper's unit of work: constructing
// the table on all 32 processors (times were reported as the max over
// processors; the per-processor cost is ns/op divided by 32).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/plancache"
	"repro/internal/redist"
	"repro/internal/section"
)

const benchProcs = 32 // the paper's processor count

func table1Problem(k, s int64, m int64) core.Problem {
	return core.Problem{P: benchProcs, K: k, L: 0, S: s, M: m}
}

// runAllProcs constructs the AM table for every processor, the unit of
// work one Table 1 measurement covers.
func runAllProcs(b *testing.B, f func(core.Problem) (core.Sequence, error), k, s int64) {
	b.Helper()
	var total int
	for m := int64(0); m < benchProcs; m++ {
		seq, err := f(table1Problem(k, s, m))
		if err != nil {
			b.Fatal(err)
		}
		total += len(seq.Gaps)
	}
	if total == 0 {
		b.Fatal("no work performed")
	}
}

func BenchmarkTable1(b *testing.B) {
	for _, k := range bench.Table1Ks() {
		for _, sc := range bench.Table1Strides() {
			s := sc.Stride(k, benchProcs*k)
			b.Run(fmt.Sprintf("k=%d/%s/Lattice", k, sc.Label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runAllProcs(b, core.Lattice, k, s)
				}
			})
			b.Run(fmt.Sprintf("k=%d/%s/Sorting", k, sc.Label), func(b *testing.B) {
				sorter := core.Sorting
				if k >= 64 {
					sorter = core.SortingRadix // mirrors the original's switch
				}
				for i := 0; i < b.N; i++ {
					runAllProcs(b, sorter, k, s)
				}
			})
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for _, k := range bench.Table1Ks() {
		b.Run(fmt.Sprintf("k=%d/Lattice", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAllProcs(b, core.Lattice, k, 7)
			}
		})
		b.Run(fmt.Sprintf("k=%d/Sorting", k), func(b *testing.B) {
			sorter := core.Sorting
			if k >= 64 {
				sorter = core.SortingRadix
			}
			for i := 0; i < b.N; i++ {
				runAllProcs(b, sorter, k, 7)
			}
		})
	}
}

func BenchmarkTable2(b *testing.B) {
	const elems = 10_000 // assignments per processor, as in Section 6.2
	for _, tc := range bench.Table2Cases() {
		for _, sh := range bench.Shapes() {
			b.Run(fmt.Sprintf("k=%d/s=%d/%s", tc.K, tc.S, sh), func(b *testing.B) {
				w, err := bench.BuildWorkload(benchProcs, tc.K, tc.S, 0, elems)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := w.RunShape(sh)
					if err != nil {
						b.Fatal(err)
					}
					if n != elems {
						b.Fatalf("wrote %d of %d", n, elems)
					}
				}
			})
		}
	}
}

// BenchmarkAblation isolates the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	// (1) The sort inside the baseline: comparison vs radix. The paper
	// notes the baseline switched to radix at k >= 64 and that an in-place
	// comparison sort would widen the lattice algorithm's lead.
	for _, k := range []int64{64, 256, 512} {
		b.Run(fmt.Sprintf("sorting-comparison/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAllProcs(b, core.Sorting, k, 7)
			}
		})
		b.Run(fmt.Sprintf("sorting-radix/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAllProcs(b, core.SortingRadix, k, 7)
			}
		})
	}
	// (2) Table-free generation (walker) vs precomputed table: the
	// space/time trade-off of Section 6.2.
	const elems = 10_000
	for _, k := range []int64{32, 256} {
		wTab, err := bench.BuildWorkload(benchProcs, k, 15, 0, elems)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gen-table/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wTab.RunShape(bench.ShapeD); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gen-walker/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wTab.RunShape(bench.ShapeWalker); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// (3) Start-scan share: the O(k) scan and extended Euclid that both
	// methods share (Figure 5 lines 3-11), measured via the Count API that
	// performs exactly that work.
	for _, k := range []int64{64, 512} {
		b.Run(fmt.Sprintf("start-scan/k=%d", k), func(b *testing.B) {
			pr := table1Problem(k, 7, benchProcs-1)
			for i := 0; i < b.N; i++ {
				if _, err := pr.Count(1 << 40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCachedVsUncached runs op as two sub-benchmarks: Uncached clears
// every runtime cache before each iteration (full planning cost every
// time), Cached warms the caches once and then measures the steady
// state. Both report allocations.
func benchCachedVsUncached(b *testing.B, op func() error) {
	b.Helper()
	reset := func() {
		hpf.ResetSectionPlanCache()
		comm.ResetPlanCache()
		comm.ResetPlanCache2D()
		plancache.ResetTables()
	}
	b.Run("Uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reset()
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Cached", func(b *testing.B) {
		reset()
		if err := op(); err != nil { // warm-up
			b.Fatal(err)
		}
		warm := totalMisses()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if steady := totalMisses() - warm; steady != 0 {
			b.Fatalf("steady state missed the caches %d times, want 0", steady)
		}
	})
}

func totalMisses() int64 {
	return hpf.SectionPlanCacheStats().Misses +
		comm.PlanCacheStats().Misses +
		comm.PlanCache2DStats().Misses +
		plancache.TableStats().Misses
}

// BenchmarkSectionAssignCache: A(1:n-2:3) = v plus a pointwise map —
// pure address generation, no communication.
func BenchmarkSectionAssignCache(b *testing.B) {
	const n = benchProcs * 32
	a := hpf.MustNewArray(dist.MustNew(benchProcs, 8), n)
	sec := section.Section{Lo: 1, Hi: n - 2, Stride: 3}
	benchCachedVsUncached(b, func() error {
		if err := a.FillSection(sec, 1); err != nil {
			return err
		}
		return a.MapSection(sec, func(v float64) float64 { return v * 0.5 })
	})
}

// BenchmarkJacobiIterationCache: one sweep of the Jacobi example —
// Combine of shifted sections, scale, copy back.
func BenchmarkJacobiIterationCache(b *testing.B) {
	const n = benchProcs * 16
	m := machine.MustNew(benchProcs)
	layout := dist.MustNew(benchProcs, 4)
	x := hpf.MustNewArray(layout, n)
	tmp := hpf.MustNewArray(layout, n)
	interior := section.Section{Lo: 1, Hi: n - 2, Stride: 1}
	left := section.Section{Lo: 0, Hi: n - 3, Stride: 1}
	right := section.Section{Lo: 2, Hi: n - 1, Stride: 1}
	benchCachedVsUncached(b, func() error {
		if err := comm.Combine(m, tmp, interior, x, left, x, right, comm.Add); err != nil {
			return err
		}
		if err := tmp.MapSection(interior, func(v float64) float64 { return 0.5 * v }); err != nil {
			return err
		}
		return comm.Copy(m, x, interior, tmp, interior)
	})
}

// BenchmarkRedistributeCache: a cyclic(4) ⇄ cyclic(7) bounce.
func BenchmarkRedistributeCache(b *testing.B) {
	const n = benchProcs * 16
	m := machine.MustNew(benchProcs)
	ra := hpf.MustNewArray(dist.MustNew(benchProcs, 4), n)
	rb := hpf.MustNewArray(dist.MustNew(benchProcs, 7), n)
	benchCachedVsUncached(b, func() error {
		if err := redist.RedistributeInto(m, rb, ra); err != nil {
			return err
		}
		return redist.RedistributeInto(m, ra, rb)
	})
}

// BenchmarkSequenceInto compares the allocating Sequence call with the
// buffer-reusing SequenceInto variant on a cached TableSet.
func BenchmarkSequenceInto(b *testing.B) {
	for _, k := range []int64{32, 256} {
		ts, err := core.NewTableSet(benchProcs, k, 0, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d/Sequence", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seq, err := ts.Sequence(0)
				if err != nil {
					b.Fatal(err)
				}
				sinkGaps += len(seq.Gaps)
			}
		})
		b.Run(fmt.Sprintf("k=%d/SequenceInto", k), func(b *testing.B) {
			b.ReportAllocs()
			var buf []int64
			for i := 0; i < b.N; i++ {
				seq, err := ts.SequenceInto(0, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = seq.Gaps
				sinkGaps += len(seq.Gaps)
			}
		})
	}
}

var sinkGaps int
